package transcipher

import "repro/internal/obs"

// metrics are the transciphering-tier instruments, resolved from the
// process-wide obs registry (same snapshot as the server.* family):
//
//	transcipher.enrolled        (sessions with a built engine)
//	transcipher.upload.bytes    (accepted eval-key upload bytes)
//	transcipher.queue.depth     (heavy-pool jobs waiting)
//	transcipher.eval_ns         (per-block circuit latency histogram)
//	transcipher.cache.hits / transcipher.cache.misses
//	  (Enc(KS) block cache; a hit skips the whole circuit)
//	transcipher.rejected.budget (cost-model admission rejections)
//	transcipher.est_cost_ms     (EWMA per-block cost estimate)
type metrics struct {
	enrolled       *obs.Gauge
	uploadBytes    *obs.Counter
	queueDepth     *obs.Gauge
	evalNS         *obs.Histogram
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	rejectedBudget *obs.Counter
	estCostMS      *obs.Gauge
}

func newMetrics() *metrics {
	r := obs.Default()
	return &metrics{
		enrolled:       r.Gauge("transcipher.enrolled"),
		uploadBytes:    r.Counter("transcipher.upload.bytes"),
		queueDepth:     r.Gauge("transcipher.queue.depth"),
		evalNS:         r.Histogram("transcipher.eval_ns"),
		cacheHits:      r.Counter("transcipher.cache.hits"),
		cacheMisses:    r.Counter("transcipher.cache.misses"),
		rejectedBudget: r.Counter("transcipher.rejected.budget"),
		estCostMS:      r.Gauge("transcipher.est_cost_ms"),
	}
}
