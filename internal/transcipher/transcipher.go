// Package transcipher is the serving tier's heavyweight lane: it hosts
// one hhe.PackedServer per enrolled session and evaluates the
// homomorphic PASTA decryption circuit (Fig. 1's server side) on a
// dedicated worker pool, segregated from the µs-scale keystream path so
// a multi-second circuit evaluation can never head-of-line-block a
// latency-sensitive request.
//
// Enrollment is a chunked, resumable upload of the packed eval-key blob
// (relin key, per-step Galois keys, encrypted symmetric key — tens of
// MB at production parameters). The final chunk triggers an engine
// build on the heavy pool; the transport defers its last ack until the
// engine is ready, so a Complete ack means "transcipher requests will
// be served", not just "bytes received".
//
// Admission is cost-model based: an EWMA of measured eval time per
// block prices each request, and requests that would push the estimated
// backlog past the configured budget are rejected with a retry hint
// equal to the estimated drain time (the wire layer surfaces it as
// Retry-After). Keystream evaluation is independent of the payload, so
// completed Enc(KS) blocks are cached per session: a cache hit reduces
// a repeat block to one SubPlainFrom.
package transcipher

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bfv"
	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
)

// Service errors; match with errors.Is. The serving tier maps them to
// the wire's typed error codes.
var (
	// ErrNoEvalKeys reports a transcipher request on a session that has
	// not completed its eval-key upload.
	ErrNoEvalKeys = errors.New("transcipher: session has no eval keys")
	// ErrBudget reports a request rejected by cost-model admission; a
	// wrapping BudgetError carries the retry hint.
	ErrBudget = errors.New("transcipher: over eval budget")
	// ErrClosed reports a request after Close.
	ErrClosed = errors.New("transcipher: service closed")
	// ErrUpload reports a malformed or oversized upload chunk.
	ErrUpload = errors.New("transcipher: bad eval-key upload")
)

// BudgetError is the admission rejection: the estimated backlog plus
// this request's estimated cost exceeds the configured budget.
// Unwraps to ErrBudget.
type BudgetError struct {
	// Retry is the estimated time until the backlog drains enough to
	// admit a request of this size.
	Retry time.Duration
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("transcipher: over eval budget (retry in %v)", e.Retry)
}

func (e *BudgetError) Unwrap() error { return ErrBudget }

// Config tunes the service. Zero values select the defaults.
type Config struct {
	// Workers is the heavy pool size (default 1: the circuit evaluation
	// itself parallelizes across the BFV limb pool, so one or two
	// transcipher workers saturate a small host).
	Workers int
	// Queue bounds the pending job count (default 16).
	Queue int
	// Budget caps the estimated eval backlog; requests that would push
	// past it are rejected with a retry hint (default 30s).
	Budget time.Duration
	// CacheBlocks is the per-session Enc(KS) LRU capacity (default 32).
	CacheBlocks int
	// MaxUploadBytes caps a session's eval-key blob (default
	// 256 MiB, the wire codec's own MaxEvalKeysTotal).
	MaxUploadBytes uint64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Queue <= 0 {
		c.Queue = 16
	}
	if c.Budget <= 0 {
		c.Budget = 30 * time.Second
	}
	if c.CacheBlocks <= 0 {
		c.CacheBlocks = 32
	}
	if c.MaxUploadBytes == 0 {
		c.MaxUploadBytes = 1 << 28
	}
	return c
}

// coldEvalMS seeds the cost model before the first measured block: a
// deliberately conservative per-block estimate so a cold server does
// not over-admit (production packed evaluation is O(100ms–1s)).
const coldEvalMS = 250.0

// UploadState reports enrollment progress back to the transport.
type UploadState struct {
	Received uint64 // contiguous bytes accepted so far
	Total    uint64 // declared blob size
	Ready    bool   // engine built; transcipher requests will be served
}

// enrollment is one session's upload accumulator and, once built, its
// evaluation engine and Enc(KS) cache.
type enrollment struct {
	mu       sync.Mutex
	pp       pasta.Params
	buf      []byte // accumulator; nil once the engine is built
	received uint64
	total    uint64
	building bool
	engine   *hhe.PackedServer

	// Enc(KS) LRU: key (nonce, block) → *bfv.Ciphertext.
	cache    map[ksKey]*list.Element
	cacheLRU list.List // of ksEntry, front = most recent
}

type ksKey struct{ nonce, block uint64 }

type ksEntry struct {
	key ksKey
	ct  *bfv.Ciphertext
}

// Service runs the transciphering tier: enrollment, admission, the
// heavy pool, and the per-session engines.
type Service struct {
	cfg Config
	m   *metrics

	mu       sync.Mutex
	sessions map[uint32]*enrollment
	closed   bool

	jobs      chan func()
	wg        sync.WaitGroup
	startOnce sync.Once // workers start lazily on first submission

	// cost model: EWMA of measured eval ms per (uncached) block, and
	// the estimated outstanding backlog in ms. Both atomic — admission
	// runs on transport goroutines, updates on workers.
	evalMSx1k atomic.Int64 // EWMA × 1000
	backlogMS atomic.Int64

	enrolled atomic.Int64 // sessions with a built engine (gauge source)
}

// New creates a service. The heavy pool starts lazily on the first
// submitted job, so a server that never sees transcipher traffic runs
// no extra goroutines.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		m:        newMetrics(),
		sessions: map[uint32]*enrollment{},
		jobs:     make(chan func(), cfg.Queue),
	}
	s.evalMSx1k.Store(int64(coldEvalMS * 1000))
	return s
}

// start spins up the worker pool; callers hold s.mu (so a start can
// never race Close's channel close).
func (s *Service) start() {
	s.startOnce.Do(func() {
		for i := 0; i < s.cfg.Workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for job := range s.jobs {
					job()
					s.m.queueDepth.Set(int64(len(s.jobs)))
				}
			}()
		}
	})
}

// Close stops the workers after draining queued jobs. Pending callbacks
// still run; new submissions fail with ErrClosed.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// Drop discards a session's enrollment (transport session close).
func (s *Service) Drop(session uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.sessions[session]; ok {
		delete(s.sessions, session)
		e.mu.Lock()
		ready := e.engine != nil
		e.mu.Unlock()
		if ready {
			s.m.enrolled.Set(s.enrolled.Add(-1))
		}
	}
}

// EvalMSEstimate exposes the cost model's current per-block estimate.
func (s *Service) EvalMSEstimate() float64 {
	return float64(s.evalMSx1k.Load()) / 1000
}

func (s *Service) enrollmentFor(session uint32) (*enrollment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	e, ok := s.sessions[session]
	if !ok {
		e = &enrollment{cache: map[ksKey]*list.Element{}}
		s.sessions[session] = e
	}
	return e, nil
}

// AcceptChunk ingests one upload chunk for session (creating the
// enrollment on first contact). Chunks must arrive offset-contiguous;
// re-sent already-received ranges are acked idempotently with the
// current high-water mark, and a zero-length chunk is a pure progress
// probe. When the chunk completes the blob, the engine build is
// scheduled on the heavy pool and ready is invoked from a worker once
// the engine is up (or the build failed) — the transport defers its
// final ack until then, signalled by deferred=true. A probe on an
// assembled-but-failed enrollment re-arms the build the same way.
func (s *Service) AcceptChunk(session uint32, pp pasta.Params, offset, total uint64, chunk []byte, ready func(UploadState, error)) (st UploadState, deferred bool, err error) {
	if total > s.cfg.MaxUploadBytes {
		return st, false, fmt.Errorf("%w: blob of %d bytes (max %d)", ErrUpload, total, s.cfg.MaxUploadBytes)
	}
	e, err := s.enrollmentFor(session)
	if err != nil {
		return st, false, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.engine != nil {
		// Already built: idempotent ack (a client retrying its last
		// chunk after a lost ack lands here).
		return UploadState{Received: e.received, Total: e.total, Ready: true}, false, nil
	}
	if e.total == 0 && total > 0 {
		e.total, e.pp = total, pp
		e.buf = make([]byte, 0, min(total, 4<<20))
	}
	if total != 0 && e.total != 0 && total != e.total {
		return st, false, fmt.Errorf("%w: declared size changed %d → %d", ErrUpload, e.total, total)
	}
	if len(chunk) > 0 {
		switch {
		case offset > e.received:
			return st, false, fmt.Errorf("%w: chunk at offset %d but only %d bytes received", ErrUpload, offset, e.received)
		case offset+uint64(len(chunk)) <= e.received:
			// Entirely re-sent; ack the high-water mark below.
		default:
			fresh := chunk[e.received-offset:]
			e.buf = append(e.buf, fresh...)
			e.received += uint64(len(fresh))
			s.m.uploadBytes.Add(int64(len(fresh)))
		}
	}
	st = UploadState{Received: e.received, Total: e.total}
	if e.total > 0 && e.received == e.total && !e.building {
		e.building = true
		blob := e.buf
		if err := s.submit(func() { s.buildEngine(session, e, blob, ready) }); err != nil {
			e.building = false
			return st, false, err
		}
		return st, true, nil
	}
	return st, false, nil
}

// buildEngine parses the assembled blob and constructs the packed
// evaluation engine (heavy-pool job).
func (s *Service) buildEngine(session uint32, e *enrollment, blob []byte, ready func(UploadState, error)) {
	bp, ctx, keys, err := hhe.UnmarshalPackedEvalKeys(blob)
	var engine *hhe.PackedServer
	if err == nil {
		e.mu.Lock()
		pp := e.pp
		e.mu.Unlock()
		engine, err = hhe.NewPackedServer(hhe.Params{Pasta: pp, BFV: bp}, ctx, keys)
	}
	e.mu.Lock()
	e.building = false
	if err == nil {
		e.engine = engine
		e.buf = nil // the accumulator is dead weight once parsed
	}
	st := UploadState{Received: e.received, Total: e.total, Ready: e.engine != nil}
	e.mu.Unlock()
	if err == nil {
		s.m.enrolled.Set(s.enrolled.Add(1))
	}
	ready(st, err)
}

// submit enqueues a heavy job without blocking.
func (s *Service) submit(job func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.start()
	select {
	case s.jobs <- job:
		s.m.queueDepth.Set(int64(len(s.jobs)))
		return nil
	default:
		s.m.rejectedBudget.Inc()
		return &BudgetError{Retry: s.drainEstimate(1)}
	}
}

// drainEstimate converts the current backlog plus n more blocks into a
// wall-clock retry hint.
func (s *Service) drainEstimate(n int) time.Duration {
	ms := float64(s.backlogMS.Load()) + float64(n)*s.EvalMSEstimate()
	d := time.Duration(ms/float64(s.cfg.Workers)) * time.Millisecond
	return max(d, 10*time.Millisecond)
}

// Transcipher prices and admits blocks [first, first+len(blocks)) of
// nonce for session, then evaluates them on the heavy pool. blocks[i]
// is the symmetric ciphertext of block first+i. On success done is
// invoked from a worker with one serialized BFV ciphertext per block
// (all CiphertextBytes() long, concatenated in block order); admission
// failures return synchronously and done is not called.
func (s *Service) Transcipher(session uint32, nonce, first uint64, blocks []ff.Vec, done func([]byte, error)) error {
	e, err := s.enrollmentFor(session)
	if err != nil {
		return err
	}
	e.mu.Lock()
	engine := e.engine
	e.mu.Unlock()
	if engine == nil {
		return ErrNoEvalKeys
	}

	// Cost-model admission: estimated ms for the uncached blocks.
	miss := 0
	e.mu.Lock()
	for i := range blocks {
		if _, ok := e.cache[ksKey{nonce, first + uint64(i)}]; !ok {
			miss++
		}
	}
	e.mu.Unlock()
	cost := int64(float64(miss) * s.EvalMSEstimate())
	if time.Duration(s.backlogMS.Load()+cost)*time.Millisecond > s.cfg.Budget {
		s.m.rejectedBudget.Inc()
		return &BudgetError{Retry: s.drainEstimate(miss)}
	}
	s.backlogMS.Add(cost)
	if err := s.submit(func() {
		defer s.backlogMS.Add(-cost)
		done(s.evalBlocks(e, engine, nonce, first, blocks))
	}); err != nil {
		s.backlogMS.Add(-cost)
		return err
	}
	return nil
}

// evalBlocks runs the circuit (or the cache's SubPlainFrom shortcut)
// for each block and concatenates the serialized results.
func (s *Service) evalBlocks(e *enrollment, engine *hhe.PackedServer, nonce, first uint64, blocks []ff.Vec) ([]byte, error) {
	ctx := engine.Context()
	out := make([]byte, 0, len(blocks)*ctx.CiphertextBytes())
	for i, sym := range blocks {
		block := first + uint64(i)
		ks := e.cachedKS(ksKey{nonce, block})
		if ks != nil {
			s.m.cacheHits.Inc()
		} else {
			s.m.cacheMisses.Inc()
			start := time.Now()
			var err error
			ks, err = engine.EvalKeystream(nonce, block)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			s.m.evalNS.Observe(elapsed.Nanoseconds())
			s.observeEvalMS(float64(elapsed.Nanoseconds()) / 1e6)
			e.storeKS(ksKey{nonce, block}, ks, s.cfg.CacheBlocks)
		}
		ct, err := engine.TranscipherWith(ks, sym)
		if err != nil {
			return nil, err
		}
		blob, err := ct.MarshalBinary(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, blob...)
	}
	return out, nil
}

// observeEvalMS folds a measured per-block eval time into the EWMA
// (α = 0.3) and publishes the estimate gauge.
func (s *Service) observeEvalMS(ms float64) {
	for {
		old := s.evalMSx1k.Load()
		next := int64(0.7*float64(old) + 0.3*ms*1000)
		if s.evalMSx1k.CompareAndSwap(old, next) {
			s.m.estCostMS.Set(next / 1000)
			return
		}
	}
}

// cachedKS returns the cached Enc(KS) for k, refreshing its recency.
func (e *enrollment) cachedKS(k ksKey) *bfv.Ciphertext {
	e.mu.Lock()
	defer e.mu.Unlock()
	el, ok := e.cache[k]
	if !ok {
		return nil
	}
	e.cacheLRU.MoveToFront(el)
	return el.Value.(ksEntry).ct
}

// storeKS inserts a computed Enc(KS), evicting the least recent entry
// past cap blocks.
func (e *enrollment) storeKS(k ksKey, ct *bfv.Ciphertext, capBlocks int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[k]; ok {
		return
	}
	e.cache[k] = e.cacheLRU.PushFront(ksEntry{key: k, ct: ct})
	for len(e.cache) > capBlocks {
		old := e.cacheLRU.Back()
		delete(e.cache, old.Value.(ksEntry).key)
		e.cacheLRU.Remove(old)
	}
}
