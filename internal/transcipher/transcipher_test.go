package transcipher

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/ff"
	"repro/internal/hhe"
	"repro/internal/pasta"
)

// fixture: a toy HHE client, its serialized eval-key blob, and a local
// PackedServer oracle built from the SAME blob (PackedEvalKeys draws
// fresh randomness per call, so the oracle must share the uploaded key
// material to be byte-comparable).
type fixture struct {
	par    hhe.Params
	client *hhe.Client
	blob   []byte
	oracle *hhe.PackedServer
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	par, err := hhe.NewToyParams(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	key := pasta.KeyFromSeed(par.Pasta, "transcipher-test")
	client, err := hhe.NewClient(par, key, []byte{21})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := client.EvalKeysBlob()
	if err != nil {
		t.Fatal(err)
	}
	bp, ctx, keys, err := hhe.UnmarshalPackedEvalKeys(blob)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := hhe.NewPackedServer(hhe.Params{Pasta: par.Pasta, BFV: bp}, ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{par: par, client: client, blob: blob, oracle: oracle}
}

// enroll uploads fx.blob to svc for session in chunkSize pieces and
// waits for the engine-ready callback.
func enroll(t testing.TB, svc *Service, fx *fixture, session uint32, chunkSize int) {
	t.Helper()
	readyCh := make(chan error, 1)
	total := uint64(len(fx.blob))
	for off := 0; off < len(fx.blob); off += chunkSize {
		end := min(off+chunkSize, len(fx.blob))
		st, deferred, err := svc.AcceptChunk(session, fx.par.Pasta, uint64(off), total, fx.blob[off:end],
			func(st UploadState, err error) {
				if err == nil && !st.Ready {
					err = errors.New("ready callback without Ready state")
				}
				readyCh <- err
			})
		if err != nil {
			t.Fatal(err)
		}
		if end < len(fx.blob) {
			if deferred {
				t.Fatal("non-final chunk deferred its ack")
			}
			if st.Received != uint64(end) {
				t.Fatalf("received %d after chunk ending at %d", st.Received, end)
			}
		} else if !deferred {
			t.Fatal("final chunk did not defer to the engine build")
		}
	}
	select {
	case err := <-readyCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("engine build timed out")
	}
}

// transcipherBlocking drives Service.Transcipher and waits for the
// worker callback.
func transcipherBlocking(t testing.TB, svc *Service, session uint32, nonce, first uint64, blocks []ff.Vec) []byte {
	t.Helper()
	ch := make(chan struct {
		b   []byte
		err error
	}, 1)
	err := svc.Transcipher(session, nonce, first, blocks, func(b []byte, err error) {
		ch <- struct {
			b   []byte
			err error
		}{b, err}
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.err != nil {
		t.Fatal(res.err)
	}
	return res.b
}

// TestEnrollAndTranscipherMatchesOracle: chunked enrollment followed by
// a two-block transcipher; the service's serialized replies must be
// byte-identical to the local oracle and decrypt to the message.
func TestEnrollAndTranscipherMatchesOracle(t *testing.T) {
	fx := newFixture(t)
	svc := New(Config{Workers: 1})
	defer svc.Close()
	enroll(t, svc, fx, 7, len(fx.blob)/3+1)

	msgs := []ff.Vec{{11, 22, 33, 44}, {5, 6, 7, 65000}}
	blocks := make([]ff.Vec, len(msgs))
	for i, m := range msgs {
		ct, err := fx.client.EncryptBlock(2, uint64(i), m)
		if err != nil {
			t.Fatal(err)
		}
		blocks[i] = ct
	}
	out := transcipherBlocking(t, svc, 7, 2, 0, blocks)

	ctx := fx.oracle.Context()
	sz := ctx.CiphertextBytes()
	if len(out) != sz*len(blocks) {
		t.Fatalf("reply is %d bytes, want %d × %d", len(out), len(blocks), sz)
	}
	for i, m := range msgs {
		wantCt, err := fx.oracle.Transcipher(2, uint64(i), blocks[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := wantCt.MarshalBinary(ctx)
		if err != nil {
			t.Fatal(err)
		}
		got := out[i*sz : (i+1)*sz]
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d: service reply is not bit-identical to the local oracle", i)
		}
		ct, err := ctx.UnmarshalCiphertext(got)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := fx.client.DecryptPacked(ct, len(m))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Equal(m) {
			t.Fatalf("block %d decrypts to %v, want %v", i, dec, m)
		}
	}
}

// TestCacheHitIsIdentical: a repeat block must serve from the Enc(KS)
// cache (skipping the circuit) and still produce the exact bytes of a
// cold evaluation.
func TestCacheHitIsIdentical(t *testing.T) {
	fx := newFixture(t)
	svc := New(Config{Workers: 1, CacheBlocks: 4})
	defer svc.Close()
	enroll(t, svc, fx, 1, len(fx.blob))

	msg := ff.Vec{9, 8, 7, 6}
	sym, err := fx.client.EncryptBlock(5, 3, msg)
	if err != nil {
		t.Fatal(err)
	}
	cold := transcipherBlocking(t, svc, 1, 5, 3, []ff.Vec{sym})
	hits0 := svc.m.cacheHits.Value()
	warm := transcipherBlocking(t, svc, 1, 5, 3, []ff.Vec{sym})
	if svc.m.cacheHits.Value() != hits0+1 {
		t.Fatalf("cache hits %d, want %d", svc.m.cacheHits.Value(), hits0+1)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cache-hit reply differs from cold evaluation")
	}
}

// TestChunkReorderAndProbe: out-of-order chunks are rejected, re-sent
// ranges are acked idempotently, and a zero-length probe reports the
// high-water mark.
func TestChunkReorderAndProbe(t *testing.T) {
	fx := newFixture(t)
	svc := New(Config{})
	defer svc.Close()
	total := uint64(len(fx.blob))
	ready := func(UploadState, error) {}

	if _, _, err := svc.AcceptChunk(3, fx.par.Pasta, 100, total, fx.blob[100:200], ready); !errors.Is(err, ErrUpload) {
		t.Fatalf("gap chunk: got %v, want ErrUpload", err)
	}
	if _, _, err := svc.AcceptChunk(3, fx.par.Pasta, 0, total, fx.blob[:200], ready); err != nil {
		t.Fatal(err)
	}
	st, _, err := svc.AcceptChunk(3, fx.par.Pasta, 0, total, fx.blob[:100], ready)
	if err != nil || st.Received != 200 {
		t.Fatalf("idempotent re-send: state %+v err %v", st, err)
	}
	st, _, err = svc.AcceptChunk(3, fx.par.Pasta, 150, total, fx.blob[150:300], ready)
	if err != nil || st.Received != 300 {
		t.Fatalf("overlapping chunk: state %+v err %v", st, err)
	}
	st, _, err = svc.AcceptChunk(3, fx.par.Pasta, 0, 0, nil, ready)
	if err != nil || st.Received != 300 || st.Ready {
		t.Fatalf("probe: state %+v err %v", st, err)
	}
	if _, _, err := svc.AcceptChunk(3, fx.par.Pasta, 300, total+1, fx.blob[300:301], ready); !errors.Is(err, ErrUpload) {
		t.Fatalf("changed total: got %v, want ErrUpload", err)
	}
}

// TestNoEvalKeysAndBudget: the typed rejections the wire layer maps to
// CodeNoEvalKeys / CodeTranscipherBudget.
func TestNoEvalKeysAndBudget(t *testing.T) {
	fx := newFixture(t)
	svc := New(Config{Budget: time.Millisecond}) // below the cold estimate
	defer svc.Close()

	err := svc.Transcipher(9, 1, 0, []ff.Vec{{1}}, func([]byte, error) {})
	if !errors.Is(err, ErrNoEvalKeys) {
		t.Fatalf("unenrolled session: got %v, want ErrNoEvalKeys", err)
	}

	enroll(t, svc, fx, 9, len(fx.blob))
	err = svc.Transcipher(9, 1, 0, []ff.Vec{{1}}, func([]byte, error) {})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("over budget: got %v, want ErrBudget", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Retry <= 0 {
		t.Fatalf("budget rejection carries no retry hint: %v", err)
	}
}

// TestDropForgetsSession: after Drop the session must re-enroll.
func TestDropForgetsSession(t *testing.T) {
	fx := newFixture(t)
	svc := New(Config{})
	defer svc.Close()
	enroll(t, svc, fx, 4, len(fx.blob))
	svc.Drop(4)
	err := svc.Transcipher(4, 1, 0, []ff.Vec{{1}}, func([]byte, error) {})
	if !errors.Is(err, ErrNoEvalKeys) {
		t.Fatalf("dropped session: got %v, want ErrNoEvalKeys", err)
	}
}

// BenchmarkTranscipherBlock measures the service's per-block cost on
// the heavy pool: cold (full packed circuit) and cache-hit (one
// SubPlainFrom) — the asymmetry that motivates the Enc(KS) cache.
func BenchmarkTranscipherBlock(b *testing.B) {
	fx := newFixture(b)
	sym, err := fx.client.EncryptBlock(1, 0, ff.Vec{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		svc := New(Config{CacheBlocks: 1, Budget: time.Hour})
		defer svc.Close()
		enroll(b, svc, fx, 1, len(fx.blob))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A fresh block number every iteration defeats the cache.
			transcipherBlocking(b, svc, 1, 1, uint64(i), []ff.Vec{sym})
		}
	})
	b.Run("cache-hit", func(b *testing.B) {
		svc := New(Config{CacheBlocks: 4, Budget: time.Hour})
		defer svc.Close()
		enroll(b, svc, fx, 1, len(fx.blob))
		transcipherBlocking(b, svc, 1, 1, 0, []ff.Vec{sym}) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			transcipherBlocking(b, svc, 1, 1, 0, []ff.Vec{sym})
		}
	})
}
