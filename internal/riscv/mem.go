package riscv

import "fmt"

// RAM is a simple little-endian byte-addressable memory implementing Bus.
type RAM struct {
	Base uint32
	Data []byte
}

// NewRAM allocates size bytes based at base.
func NewRAM(base uint32, size int) *RAM {
	return &RAM{Base: base, Data: make([]byte, size)}
}

// Contains reports whether [addr, addr+size) falls inside the RAM.
func (r *RAM) Contains(addr uint32, size int) bool {
	off := int64(addr) - int64(r.Base)
	return off >= 0 && off+int64(size) <= int64(len(r.Data))
}

// Read implements Bus.
func (r *RAM) Read(addr uint32, size int) (uint32, error) {
	if !r.Contains(addr, size) {
		return 0, fmt.Errorf("ram: read of %d bytes at %#x out of range", size, addr)
	}
	off := addr - r.Base
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(r.Data[off+uint32(i)]) << (8 * i)
	}
	return v, nil
}

// Write implements Bus.
func (r *RAM) Write(addr uint32, v uint32, size int) error {
	if !r.Contains(addr, size) {
		return fmt.Errorf("ram: write of %d bytes at %#x out of range", size, addr)
	}
	off := addr - r.Base
	for i := 0; i < size; i++ {
		r.Data[off+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}

// LoadWords copies a program image into RAM at addr.
func (r *RAM) LoadWords(addr uint32, words []uint32) error {
	for i, w := range words {
		if err := r.Write(addr+uint32(4*i), w, 4); err != nil {
			return err
		}
	}
	return nil
}

// Word reads an aligned 32-bit word (convenience for tests/harnesses).
func (r *RAM) Word(addr uint32) uint32 {
	v, err := r.Read(addr, 4)
	if err != nil {
		panic(err)
	}
	return v
}
