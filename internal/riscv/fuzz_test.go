package riscv

import (
	"strings"
	"testing"
)

// FuzzAssembler: arbitrary source text must never panic the assembler;
// it either errors or produces words.
func FuzzAssembler(f *testing.F) {
	f.Add("addi x1, x2, 3")
	f.Add("loop: j loop")
	f.Add("li a0, 0x12345678\necall")
	f.Add(".word 0xdeadbeef")
	f.Add("lw x1, (x2)")
	f.Fuzz(func(t *testing.T, src string) {
		words, err := Assemble(src, 0)
		if err == nil {
			for i, w := range words {
				_ = Disassemble(w, uint32(4*i))
			}
		}
	})
}

// FuzzDisasmSoundness: any word the disassembler claims to decode must
// reassemble to the identical word.
func FuzzDisasmSoundness(f *testing.F) {
	f.Add(uint32(0x00000013)) // nop
	f.Add(uint32(0x00000073)) // ecall
	f.Add(uint32(0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, w uint32) {
		text := Disassemble(w, 0x1000)
		if strings.HasPrefix(text, ".word") {
			return
		}
		w2, err := Assemble(text, 0x1000)
		if err != nil {
			t.Fatalf("%q from %#08x does not reassemble: %v", text, w, err)
		}
		if w2[0] != w {
			t.Fatalf("%#08x → %q → %#08x", w, text, w2[0])
		}
	})
}

// FuzzCPUNoHang: arbitrary instruction words must either execute, fault,
// or halt — never hang or panic (bounded by the instruction limit).
func FuzzCPUNoHang(f *testing.F) {
	f.Add(uint32(0x00000013), uint32(0x00000073))
	f.Add(uint32(0xFFFFFFFF), uint32(0))
	f.Fuzz(func(t *testing.T, w1, w2 uint32) {
		ram := NewRAM(0, 4096)
		_ = ram.Write(0, w1, 4)
		_ = ram.Write(4, w2, 4)
		_ = ram.Write(8, 0x00000073, 4) // ecall backstop
		cpu := New(ram, 0)
		_ = cpu.Run(1000) // error or halt are both fine
	})
}
