// Package riscv implements an RV32IM instruction-set simulator with an
// Ibex-like timing model and a small two-pass assembler. It is the
// substrate for the paper's RISC-V SoC evaluation (Sec. IV-A ❸): the
// PASTA peripheral hangs off the core's data bus as a loosely coupled
// slave while mastering its own port into RAM.
package riscv

import (
	"fmt"
	"math/bits"
)

// Bus is the CPU's view of memory and memory-mapped devices.
type Bus interface {
	// Read returns size bytes (1, 2 or 4) at addr, zero-extended.
	Read(addr uint32, size int) (uint32, error)
	// Write stores the low size bytes of v at addr.
	Write(addr uint32, v uint32, size int) error
}

// Timing is the per-instruction-class cycle cost table. Defaults model
// the Ibex small core: single-issue, in-order, 2-cycle loads/stores,
// 3-cycle taken branches, iterative divider.
type Timing struct {
	ALU, Load, Store, BranchTaken, BranchNotTaken, Jump, Mul, Div int64
}

// IbexTiming is the default timing model.
var IbexTiming = Timing{
	ALU: 1, Load: 2, Store: 2,
	BranchTaken: 3, BranchNotTaken: 1,
	Jump: 2, Mul: 2, Div: 37,
}

// Machine-mode CSR addresses supported by the model.
const (
	csrMStatus = 0x300
	csrMIE     = 0x304
	csrMTVec   = 0x305
	csrMEPC    = 0x341
	csrMCause  = 0x342

	csrCycle    = 0xC00
	csrTime     = 0xC01
	csrInstret  = 0xC02
	csrCycleH   = 0xC80
	csrTimeH    = 0xC81
	csrInstretH = 0xC82
)

// mstatus / mie bits used by the model.
const (
	mstatusMIE  = 1 << 3
	mstatusMPIE = 1 << 7
	mieMEIE     = 1 << 11 // machine external interrupt enable
)

// causeExternal is the mcause value of a machine external interrupt.
const causeExternal = 0x8000_000B

// CPU is the RV32IM hart state with machine-mode external interrupts.
type CPU struct {
	Regs  [32]uint32
	PC    uint32
	Cycle int64 // accumulated cycles under the timing model
	Insns int64 // retired instruction count

	Bus    Bus
	Timing Timing

	// Machine-mode CSRs.
	MStatus, MIE, MTVec, MEPC, MCause uint32

	// IRQPending, when non-nil, is sampled before each instruction; a
	// true return models the external interrupt line being asserted.
	IRQPending func() bool

	// Waiting is set while a WFI instruction is stalling the pipeline.
	Waiting bool
	// WaitCycles counts cycles spent sleeping in WFI (clock-gateable).
	WaitCycles int64

	Halted bool
	// HaltCode is the value of a0 at the halting ECALL/EBREAK.
	HaltCode uint32
}

// New creates a CPU attached to a bus, starting at entry.
func New(bus Bus, entry uint32) *CPU {
	return &CPU{Bus: bus, PC: entry, Timing: IbexTiming}
}

// Step fetches, decodes and executes one instruction, updating PC and the
// cycle counter. It returns an error on unaligned fetch, bus faults, or
// illegal instructions.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("riscv: step after halt")
	}
	// External interrupt: taken between instructions when globally and
	// individually enabled.
	irq := c.IRQPending != nil && c.IRQPending()
	if irq && c.MStatus&mstatusMIE != 0 && c.MIE&mieMEIE != 0 {
		c.Waiting = false
		c.MEPC = c.PC
		c.MCause = causeExternal
		// MPIE ← MIE, MIE ← 0.
		if c.MStatus&mstatusMIE != 0 {
			c.MStatus |= mstatusMPIE
		} else {
			c.MStatus &^= mstatusMPIE
		}
		c.MStatus &^= mstatusMIE
		c.PC = c.MTVec &^ 3
		c.Cycle += c.Timing.BranchTaken // trap entry cost
		return nil
	}
	if c.Waiting {
		// WFI: the core idles one (clock-gateable) cycle at a time until
		// an interrupt is pending, regardless of the global enable.
		if irq {
			c.Waiting = false
		} else {
			c.Cycle++
			c.WaitCycles++
			return nil
		}
	}
	if c.PC%4 != 0 {
		return fmt.Errorf("riscv: misaligned PC %#x", c.PC)
	}
	raw, err := c.Bus.Read(c.PC, 4)
	if err != nil {
		return fmt.Errorf("riscv: fetch at %#x: %w", c.PC, err)
	}
	nextPC := c.PC + 4
	cost := c.Timing.ALU

	opcode := raw & 0x7F
	rd := (raw >> 7) & 0x1F
	funct3 := (raw >> 12) & 0x7
	rs1 := (raw >> 15) & 0x1F
	rs2 := (raw >> 20) & 0x1F
	funct7 := raw >> 25

	setRD := func(v uint32) {
		if rd != 0 {
			c.Regs[rd] = v
		}
	}
	a, b := c.Regs[rs1], c.Regs[rs2]

	switch opcode {
	case 0x37: // LUI
		setRD(raw & 0xFFFFF000)
	case 0x17: // AUIPC
		setRD(c.PC + (raw & 0xFFFFF000))
	case 0x6F: // JAL
		setRD(c.PC + 4)
		nextPC = c.PC + immJ(raw)
		cost = c.Timing.Jump
	case 0x67: // JALR
		if funct3 != 0 {
			return c.illegal(raw)
		}
		t := (a + immI(raw)) &^ 1
		setRD(c.PC + 4)
		nextPC = t
		cost = c.Timing.Jump
	case 0x63: // BRANCH
		taken := false
		switch funct3 {
		case 0:
			taken = a == b
		case 1:
			taken = a != b
		case 4:
			taken = int32(a) < int32(b)
		case 5:
			taken = int32(a) >= int32(b)
		case 6:
			taken = a < b
		case 7:
			taken = a >= b
		default:
			return c.illegal(raw)
		}
		if taken {
			nextPC = c.PC + immB(raw)
			cost = c.Timing.BranchTaken
		} else {
			cost = c.Timing.BranchNotTaken
		}
	case 0x03: // LOAD
		addr := a + immI(raw)
		var v uint32
		switch funct3 {
		case 0: // LB
			v, err = c.Bus.Read(addr, 1)
			v = uint32(int32(int8(v)))
		case 1: // LH
			v, err = c.Bus.Read(addr, 2)
			v = uint32(int32(int16(v)))
		case 2: // LW
			v, err = c.Bus.Read(addr, 4)
		case 4: // LBU
			v, err = c.Bus.Read(addr, 1)
		case 5: // LHU
			v, err = c.Bus.Read(addr, 2)
		default:
			return c.illegal(raw)
		}
		if err != nil {
			return fmt.Errorf("riscv: load at %#x (pc %#x): %w", addr, c.PC, err)
		}
		setRD(v)
		cost = c.Timing.Load
	case 0x23: // STORE
		addr := a + immS(raw)
		switch funct3 {
		case 0:
			err = c.Bus.Write(addr, b, 1)
		case 1:
			err = c.Bus.Write(addr, b, 2)
		case 2:
			err = c.Bus.Write(addr, b, 4)
		default:
			return c.illegal(raw)
		}
		if err != nil {
			return fmt.Errorf("riscv: store at %#x (pc %#x): %w", addr, c.PC, err)
		}
		cost = c.Timing.Store
	case 0x13: // OP-IMM
		imm := immI(raw)
		switch funct3 {
		case 0:
			setRD(a + imm)
		case 2:
			setRD(boolTo32(int32(a) < int32(imm)))
		case 3:
			setRD(boolTo32(a < imm))
		case 4:
			setRD(a ^ imm)
		case 6:
			setRD(a | imm)
		case 7:
			setRD(a & imm)
		case 1: // SLLI
			if funct7 != 0 {
				return c.illegal(raw)
			}
			setRD(a << (imm & 31))
		case 5: // SRLI/SRAI
			switch funct7 {
			case 0x00:
				setRD(a >> (imm & 31))
			case 0x20:
				setRD(uint32(int32(a) >> (imm & 31)))
			default:
				return c.illegal(raw)
			}
		}
	case 0x33: // OP
		switch funct7 {
		case 0x00, 0x20:
			switch funct3 {
			case 0:
				if funct7 == 0x20 {
					setRD(a - b)
				} else {
					setRD(a + b)
				}
			case 1:
				setRD(a << (b & 31))
			case 2:
				setRD(boolTo32(int32(a) < int32(b)))
			case 3:
				setRD(boolTo32(a < b))
			case 4:
				setRD(a ^ b)
			case 5:
				if funct7 == 0x20 {
					setRD(uint32(int32(a) >> (b & 31)))
				} else {
					setRD(a >> (b & 31))
				}
			case 6:
				setRD(a | b)
			case 7:
				setRD(a & b)
			default:
				return c.illegal(raw)
			}
		case 0x01: // RV32M
			switch funct3 {
			case 0: // MUL
				setRD(a * b)
				cost = c.Timing.Mul
			case 1: // MULH
				setRD(uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32))
				cost = c.Timing.Mul
			case 2: // MULHSU
				setRD(uint32(uint64(int64(int32(a))*int64(b)) >> 32))
				cost = c.Timing.Mul
			case 3: // MULHU
				hi, _ := bits.Mul32(a, b)
				setRD(hi)
				cost = c.Timing.Mul
			case 4: // DIV
				setRD(div32(a, b))
				cost = c.Timing.Div
			case 5: // DIVU
				if b == 0 {
					setRD(^uint32(0))
				} else {
					setRD(a / b)
				}
				cost = c.Timing.Div
			case 6: // REM
				setRD(rem32(a, b))
				cost = c.Timing.Div
			case 7: // REMU
				if b == 0 {
					setRD(a)
				} else {
					setRD(a % b)
				}
				cost = c.Timing.Div
			}
		default:
			return c.illegal(raw)
		}
	case 0x0F: // FENCE — no-op in a single-hart model
	case 0x73: // SYSTEM
		switch funct3 {
		case 0:
			switch raw {
			case 0x00000073, 0x00100073: // ECALL/EBREAK halt the simulation
				c.Halted = true
				c.HaltCode = c.Regs[10] // a0
			case 0x10500073: // WFI: retire, then stall until an interrupt
				c.Waiting = true
			case 0x30200073: // MRET: return from trap
				nextPC = c.MEPC
				if c.MStatus&mstatusMPIE != 0 {
					c.MStatus |= mstatusMIE
				} else {
					c.MStatus &^= mstatusMIE
				}
				c.MStatus |= mstatusMPIE
				cost = c.Timing.Jump
			default:
				return c.illegal(raw)
			}
		case 1, 2, 3: // CSRRW / CSRRS / CSRRC
			csr := raw >> 20
			old, writable, err := c.readCSR(csr)
			if err != nil {
				return c.illegal(raw)
			}
			if rs1 != 0 || funct3 == 1 {
				if !writable {
					return c.illegal(raw)
				}
				var next uint32
				switch funct3 {
				case 1:
					next = a
				case 2:
					next = old | a
				case 3:
					next = old &^ a
				}
				c.writeCSR(csr, next)
			}
			setRD(old)
		default:
			return c.illegal(raw)
		}
	default:
		return c.illegal(raw)
	}

	c.PC = nextPC
	c.Cycle += cost
	c.Insns++
	return nil
}

// Run executes until halt or the step limit (retired instructions plus
// WFI wait cycles); it returns an error for faults or when the limit is
// exceeded.
func (c *CPU) Run(maxInsns int64) error {
	for !c.Halted {
		if c.Insns+c.WaitCycles >= maxInsns {
			return fmt.Errorf("riscv: step limit %d exceeded at pc %#x", maxInsns, c.PC)
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// readCSR returns the CSR value and whether it is writable.
func (c *CPU) readCSR(csr uint32) (uint32, bool, error) {
	switch csr {
	case csrMStatus:
		return c.MStatus, true, nil
	case csrMIE:
		return c.MIE, true, nil
	case csrMTVec:
		return c.MTVec, true, nil
	case csrMEPC:
		return c.MEPC, true, nil
	case csrMCause:
		return c.MCause, true, nil
	case csrCycle, csrTime:
		return uint32(c.Cycle), false, nil
	case csrCycleH, csrTimeH:
		return uint32(c.Cycle >> 32), false, nil
	case csrInstret:
		return uint32(c.Insns), false, nil
	case csrInstretH:
		return uint32(c.Insns >> 32), false, nil
	default:
		return 0, false, fmt.Errorf("riscv: unknown CSR %#x", csr)
	}
}

func (c *CPU) writeCSR(csr uint32, v uint32) {
	switch csr {
	case csrMStatus:
		c.MStatus = v
	case csrMIE:
		c.MIE = v
	case csrMTVec:
		c.MTVec = v
	case csrMEPC:
		c.MEPC = v
	case csrMCause:
		c.MCause = v
	}
}

func (c *CPU) illegal(raw uint32) error {
	return fmt.Errorf("riscv: illegal instruction %#08x at pc %#x", raw, c.PC)
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func div32(a, b uint32) uint32 {
	sa, sb := int32(a), int32(b)
	switch {
	case sb == 0:
		return ^uint32(0)
	case sa == -1<<31 && sb == -1:
		return a // overflow: result is dividend
	default:
		return uint32(sa / sb)
	}
}

func rem32(a, b uint32) uint32 {
	sa, sb := int32(a), int32(b)
	switch {
	case sb == 0:
		return a
	case sa == -1<<31 && sb == -1:
		return 0
	default:
		return uint32(sa % sb)
	}
}

// Immediate decoders (sign-extended where the ISA says so).
func immI(raw uint32) uint32 { return uint32(int32(raw) >> 20) }

func immS(raw uint32) uint32 {
	return uint32(int32(raw&0xFE000000)>>20) | (raw >> 7 & 0x1F)
}

func immB(raw uint32) uint32 {
	v := uint32(int32(raw&0x80000000)>>19) | // imm[12]
		(raw << 4 & 0x800) | // imm[11]
		(raw >> 20 & 0x7E0) | // imm[10:5]
		(raw >> 7 & 0x1E) // imm[4:1]
	return v
}

func immJ(raw uint32) uint32 {
	v := uint32(int32(raw&0x80000000)>>11) | // imm[20]
		(raw & 0xFF000) | // imm[19:12]
		(raw >> 9 & 0x800) | // imm[11]
		(raw >> 20 & 0x7FE) // imm[10:1]
	return v
}
