package riscv

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAssembleDisassembleRoundTrip: every encodable base instruction must
// survive assemble → disassemble → assemble unchanged.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	srcs := []string{
		"lui x5, 0x12345",
		"auipc x6, 0x1",
		"jalr x1, 8(x2)",
		"lw x7, -12(x8)",
		"lb x7, 0(x8)",
		"lhu x7, 2(x8)",
		"sw x9, 16(x10)",
		"sb x9, 1(x10)",
		"addi x11, x12, -100",
		"slti x11, x12, 5",
		"sltiu x11, x12, 5",
		"xori x11, x12, 0xFF",
		"ori x11, x12, 7",
		"andi x11, x12, 15",
		"slli x13, x14, 3",
		"srli x13, x14, 31",
		"srai x13, x14, 1",
		"add x1, x2, x3",
		"sub x1, x2, x3",
		"sll x1, x2, x3",
		"slt x1, x2, x3",
		"sltu x1, x2, x3",
		"xor x1, x2, x3",
		"srl x1, x2, x3",
		"sra x1, x2, x3",
		"or x1, x2, x3",
		"and x1, x2, x3",
		"mul x1, x2, x3",
		"mulh x1, x2, x3",
		"mulhsu x1, x2, x3",
		"mulhu x1, x2, x3",
		"div x1, x2, x3",
		"divu x1, x2, x3",
		"rem x1, x2, x3",
		"remu x1, x2, x3",
		"ecall",
		"ebreak",
		"fence",
		"rdcycle x5",
		"rdcycleh x6",
		"rdinstret x7",
	}
	for _, src := range srcs {
		w1, err := Assemble(src, 0)
		if err != nil {
			t.Fatalf("assemble %q: %v", src, err)
		}
		text := Disassemble(w1[0], 0)
		w2, err := Assemble(text, 0)
		if err != nil {
			t.Fatalf("reassemble %q (from %q): %v", text, src, err)
		}
		if w1[0] != w2[0] {
			t.Errorf("%q: %#08x → %q → %#08x", src, w1[0], text, w2[0])
		}
	}
}

// TestBranchJalRoundTrip at a nonzero PC: targets resolve absolutely.
func TestBranchJalRoundTrip(t *testing.T) {
	const pc = 0x400
	for _, src := range []string{
		"beq x1, x2, 0x480",
		"bne x1, x2, 0x3F0",
		"blt x1, x2, 0x404",
		"bgeu x1, x2, 0x500",
		"jal x1, 0x480",
	} {
		w1, err := Assemble(src, pc)
		if err != nil {
			t.Fatalf("assemble %q: %v", src, err)
		}
		text := Disassemble(w1[0], pc)
		w2, err := Assemble(text, pc)
		if err != nil {
			t.Fatalf("reassemble %q: %v", text, err)
		}
		if w1[0] != w2[0] {
			t.Errorf("%q: %#08x → %q → %#08x", src, w1[0], text, w2[0])
		}
	}
}

// TestDisassembleRandomWordsNeverPanics and anything it claims to decode
// must reassemble to the identical word (soundness on random input).
func TestDisassembleRandomSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20000; i++ {
		w := rng.Uint32()
		text := Disassemble(w, 0x1000)
		if strings.HasPrefix(text, ".word") {
			continue
		}
		w2, err := Assemble(text, 0x1000)
		if err != nil {
			t.Fatalf("disassembly %q of %#08x does not reassemble: %v", text, w, err)
		}
		if w2[0] != w {
			t.Fatalf("%#08x → %q → %#08x", w, text, w2[0])
		}
	}
}

func TestDisassembleUnknown(t *testing.T) {
	if got := Disassemble(0xFFFFFFFF, 0); !strings.HasPrefix(got, ".word") {
		t.Fatalf("unknown word decoded as %q", got)
	}
}

// TestRdcycleInstruction: a program can measure its own cycles.
func TestRdcycleInstruction(t *testing.T) {
	cpu, _ := runAsm(t, `
		rdcycle a1
		nop
		nop
		nop
		rdcycle a2
		sub a0, a2, a1
		ecall
	`)
	// Three nops at 1 cycle each, plus the first rdcycle itself.
	if cpu.Regs[10] != 4 {
		t.Fatalf("measured %d cycles between rdcycles, want 4", cpu.Regs[10])
	}
}

func TestRdinstret(t *testing.T) {
	cpu, _ := runAsm(t, `
		nop
		nop
		rdinstret a0
		ecall
	`)
	if cpu.Regs[10] != 2 {
		t.Fatalf("instret = %d, want 2", cpu.Regs[10])
	}
}

func TestCSRRSRequiresX0(t *testing.T) {
	// csrrs with rs1 != x0 (a write) is unsupported and must fault.
	ram := NewRAM(0, 4096)
	// funct3=2, rs1=1, csr=0xC00
	raw := uint32(0xC00)<<20 | 1<<15 | 2<<12 | 5<<7 | 0x73
	_ = ram.Write(0, raw, 4)
	cpu := New(ram, 0)
	if err := cpu.Step(); err == nil {
		t.Fatal("CSR write accepted")
	}
}
