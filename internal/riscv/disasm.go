package riscv

import "fmt"

// Disassemble renders one RV32IM instruction word as assembly text in the
// dialect Assemble accepts, with PC-relative targets resolved to absolute
// addresses (as hex immediates). It is used for execution traces and the
// assembler round-trip tests.
func Disassemble(raw uint32, pc uint32) string {
	opcode := raw & 0x7F
	rd := int((raw >> 7) & 0x1F)
	funct3 := (raw >> 12) & 0x7
	rs1 := int((raw >> 15) & 0x1F)
	rs2 := int((raw >> 20) & 0x1F)
	funct7 := raw >> 25

	r := func(i int) string { return fmt.Sprintf("x%d", i) }

	switch opcode {
	case 0x37:
		return fmt.Sprintf("lui %s, 0x%x", r(rd), raw>>12)
	case 0x17:
		return fmt.Sprintf("auipc %s, 0x%x", r(rd), raw>>12)
	case 0x6F:
		return fmt.Sprintf("jal %s, 0x%x", r(rd), pc+immJ(raw))
	case 0x67:
		if funct3 == 0 {
			return fmt.Sprintf("jalr %s, %d(%s)", r(rd), int32(immI(raw)), r(rs1))
		}
	case 0x63:
		names := map[uint32]string{0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %s, 0x%x", n, r(rs1), r(rs2), pc+immB(raw))
		}
	case 0x03:
		names := map[uint32]string{0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %d(%s)", n, r(rd), int32(immI(raw)), r(rs1))
		}
	case 0x23:
		names := map[uint32]string{0: "sb", 1: "sh", 2: "sw"}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %d(%s)", n, r(rs2), int32(immS(raw)), r(rs1))
		}
	case 0x13:
		imm := int32(immI(raw))
		switch funct3 {
		case 0:
			return fmt.Sprintf("addi %s, %s, %d", r(rd), r(rs1), imm)
		case 2:
			return fmt.Sprintf("slti %s, %s, %d", r(rd), r(rs1), imm)
		case 3:
			return fmt.Sprintf("sltiu %s, %s, %d", r(rd), r(rs1), imm)
		case 4:
			return fmt.Sprintf("xori %s, %s, %d", r(rd), r(rs1), imm)
		case 6:
			return fmt.Sprintf("ori %s, %s, %d", r(rd), r(rs1), imm)
		case 7:
			return fmt.Sprintf("andi %s, %s, %d", r(rd), r(rs1), imm)
		case 1:
			if funct7 == 0 {
				return fmt.Sprintf("slli %s, %s, %d", r(rd), r(rs1), rs2)
			}
		case 5:
			switch funct7 {
			case 0x20:
				return fmt.Sprintf("srai %s, %s, %d", r(rd), r(rs1), rs2)
			case 0x00:
				return fmt.Sprintf("srli %s, %s, %d", r(rd), r(rs1), rs2)
			}
		}
	case 0x33:
		var names map[uint32]string
		switch funct7 {
		case 0x00:
			names = map[uint32]string{0: "add", 1: "sll", 2: "slt", 3: "sltu", 4: "xor", 5: "srl", 6: "or", 7: "and"}
		case 0x20:
			names = map[uint32]string{0: "sub", 5: "sra"}
		case 0x01:
			names = map[uint32]string{0: "mul", 1: "mulh", 2: "mulhsu", 3: "mulhu", 4: "div", 5: "divu", 6: "rem", 7: "remu"}
		}
		if n, ok := names[funct3]; ok {
			return fmt.Sprintf("%s %s, %s, %s", n, r(rd), r(rs1), r(rs2))
		}
	case 0x0F:
		if raw == 0x0000000F { // only the canonical encoding round-trips
			return "fence"
		}
	case 0x73:
		switch {
		case raw == 0x00000073:
			return "ecall"
		case raw == 0x00100073:
			return "ebreak"
		case raw == 0x10500073:
			return "wfi"
		case raw == 0x30200073:
			return "mret"
		case funct3 == 2 && rs1 == 0:
			names := map[uint32]string{0xC00: "rdcycle", 0xC80: "rdcycleh", 0xC02: "rdinstret", 0xC82: "rdinstreth"}
			if n, ok := names[raw>>20]; ok {
				return fmt.Sprintf("%s %s", n, r(rd))
			}
			return fmt.Sprintf("csrr %s, 0x%x", r(rd), raw>>20)
		case funct3 >= 1 && funct3 <= 3:
			names := [...]string{1: "csrrw", 2: "csrrs", 3: "csrrc"}
			return fmt.Sprintf("%s %s, 0x%x, %s", names[funct3], r(rd), raw>>20, r(rs1))
		}
	}
	return fmt.Sprintf(".word 0x%08x", raw)
}
