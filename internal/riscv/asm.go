package riscv

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small RV32IM assembly dialect into machine code.
// It supports labels (`name:`), decimal/hex immediates, ABI and numeric
// register names, comments (`#` and `//`), the directive `.word`, and the
// common pseudo-instructions (li, la, mv, not, neg, j, jr, call, ret,
// nop, beqz, bnez, blez, bgez, bgt, ble). The base address fixes label
// values for la/branches.
func Assemble(src string, base uint32) ([]uint32, error) {
	lines := preprocess(src)

	// Pass 1: label addresses (expanding pseudo-instruction sizes).
	labels := map[string]uint32{}
	addr := base
	type pend struct {
		mnemonic string
		args     []string
		addr     uint32
		line     int
	}
	var prog []pend
	for _, ln := range lines {
		text := ln.text
		for {
			i := strings.Index(text, ":")
			if i < 0 {
				break
			}
			label := strings.TrimSpace(text[:i])
			if !validLabel(label) {
				return nil, fmt.Errorf("asm line %d: bad label %q", ln.num, label)
			}
			labels[label] = addr
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}
		mn, args := splitInsn(text)
		n, err := insnWords(mn, args)
		if err != nil {
			return nil, fmt.Errorf("asm line %d: %v", ln.num, err)
		}
		prog = append(prog, pend{mn, args, addr, ln.num})
		addr += uint32(4 * n)
	}

	// Pass 2: encoding.
	var out []uint32
	for _, p := range prog {
		words, err := encode(p.mnemonic, p.args, p.addr, labels)
		if err != nil {
			return nil, fmt.Errorf("asm line %d (%s): %v", p.line, p.mnemonic, err)
		}
		out = append(out, words...)
	}
	return out, nil
}

type srcLine struct {
	num  int
	text string
}

func preprocess(src string) []srcLine {
	var out []srcLine
	for i, raw := range strings.Split(src, "\n") {
		if j := strings.Index(raw, "#"); j >= 0 {
			raw = raw[:j]
		}
		if j := strings.Index(raw, "//"); j >= 0 {
			raw = raw[:j]
		}
		raw = strings.TrimSpace(raw)
		if raw != "" {
			out = append(out, srcLine{i + 1, raw})
		}
	}
	return out
}

func validLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func splitInsn(text string) (string, []string) {
	fields := strings.FieldsFunc(text, func(r rune) bool { return r == ' ' || r == '\t' })
	mn := strings.ToLower(fields[0])
	rest := strings.TrimSpace(text[len(fields[0]):])
	if rest == "" {
		return mn, nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return mn, parts
}

// insnWords returns how many 32-bit words an instruction expands to.
func insnWords(mn string, args []string) (int, error) {
	switch mn {
	case "li":
		if len(args) != 2 {
			return 0, fmt.Errorf("li needs 2 operands")
		}
		v, err := parseImm(args[1], nil, 0)
		if err != nil {
			return 0, err
		}
		if fitsI12(int64(int32(v))) {
			return 1, nil
		}
		return 2, nil
	case "la", "call":
		return 2, nil
	default:
		return 1, nil
	}
}

var regNames = func() map[string]uint32 {
	m := map[string]uint32{
		"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
		"t0": 5, "t1": 6, "t2": 7, "s0": 8, "fp": 8, "s1": 9,
		"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
		"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23, "s8": 24, "s9": 25,
		"s10": 26, "s11": 27, "t3": 28, "t4": 29, "t5": 30, "t6": 31,
	}
	for i := 0; i < 32; i++ {
		m[fmt.Sprintf("x%d", i)] = uint32(i)
	}
	return m
}()

func reg(s string) (uint32, error) {
	r, ok := regNames[strings.ToLower(s)]
	if !ok {
		return 0, fmt.Errorf("unknown register %q", s)
	}
	return r, nil
}

// parseImm parses an integer or a label (absolute value, or pc-relative
// when rel is true — handled by callers).
func parseImm(s string, labels map[string]uint32, _ uint32) (uint32, error) {
	s = strings.TrimSpace(s)
	if labels != nil {
		if v, ok := labels[s]; ok {
			return v, nil
		}
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if neg {
		return uint32(-int32(uint32(v))), nil
	}
	return uint32(v), nil
}

func fitsI12(v int64) bool { return v >= -2048 && v <= 2047 }

// csrNames maps symbolic CSR names to addresses.
var csrNames = map[string]uint32{
	"mstatus": 0x300, "mie": 0x304, "mtvec": 0x305,
	"mepc": 0x341, "mcause": 0x342,
	"cycle": 0xC00, "time": 0xC01, "instret": 0xC02,
	"cycleh": 0xC80, "timeh": 0xC81, "instreth": 0xC82,
}

func parseCSR(s string) (uint32, error) {
	if v, ok := csrNames[strings.ToLower(s)]; ok {
		return v, nil
	}
	v, err := parseImm(s, nil, 0)
	if err != nil || v > 0xFFF {
		return 0, fmt.Errorf("bad CSR %q", s)
	}
	return v, nil
}

// memOperand parses "imm(reg)".
func memOperand(s string) (imm uint32, base uint32, err error) {
	open := strings.Index(s, "(")
	close_ := strings.LastIndex(s, ")")
	if open < 0 || close_ < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr == "" {
		immStr = "0"
	}
	imm, err = parseImm(immStr, nil, 0)
	if err != nil {
		return 0, 0, err
	}
	base, err = reg(s[open+1 : close_])
	return imm, base, err
}

// Instruction encoders.
func encR(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func encI(imm, rs1, funct3, rd, opcode uint32) uint32 {
	return imm<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func encS(imm, rs2, rs1, funct3, opcode uint32) uint32 {
	return (imm>>5)<<25 | rs2<<20 | rs1<<15 | funct3<<12 | (imm&0x1F)<<7 | opcode
}

func encB(imm, rs2, rs1, funct3, opcode uint32) uint32 {
	return (imm>>12&1)<<31 | (imm>>5&0x3F)<<25 | rs2<<20 | rs1<<15 |
		funct3<<12 | (imm>>1&0xF)<<8 | (imm>>11&1)<<7 | opcode
}

func encU(imm, rd, opcode uint32) uint32 { return imm&0xFFFFF000 | rd<<7 | opcode }

func encJ(imm, rd, opcode uint32) uint32 {
	return (imm>>20&1)<<31 | (imm>>1&0x3FF)<<21 | (imm>>11&1)<<20 |
		(imm>>12&0xFF)<<12 | rd<<7 | opcode
}

type rType struct{ funct7, funct3 uint32 }

var rOps = map[string]rType{
	"add": {0x00, 0}, "sub": {0x20, 0}, "sll": {0x00, 1}, "slt": {0x00, 2},
	"sltu": {0x00, 3}, "xor": {0x00, 4}, "srl": {0x00, 5}, "sra": {0x20, 5},
	"or": {0x00, 6}, "and": {0x00, 7},
	"mul": {0x01, 0}, "mulh": {0x01, 1}, "mulhsu": {0x01, 2}, "mulhu": {0x01, 3},
	"div": {0x01, 4}, "divu": {0x01, 5}, "rem": {0x01, 6}, "remu": {0x01, 7},
}

var iOps = map[string]uint32{
	"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7,
}

var loadOps = map[string]uint32{"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
var storeOps = map[string]uint32{"sb": 0, "sh": 1, "sw": 2}
var branchOps = map[string]uint32{"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}

func encode(mn string, args []string, pc uint32, labels map[string]uint32) ([]uint32, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("want %d operands, got %d", n, len(args))
		}
		return nil
	}
	switch {
	case mn == ".word":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := parseImm(args[0], labels, pc)
		if err != nil {
			return nil, err
		}
		return []uint32{v}, nil
	}
	if op, ok := rOps[mn]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		rs1, err2 := reg(args[1])
		rs2, err3 := reg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		return []uint32{encR(op.funct7, rs2, rs1, op.funct3, rd, 0x33)}, nil
	}
	if f3, ok := iOps[mn]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		rs1, err2 := reg(args[1])
		imm, err3 := parseImm(args[2], nil, 0)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if !fitsI12(int64(int32(imm))) {
			return nil, fmt.Errorf("immediate %d out of I-type range", int32(imm))
		}
		return []uint32{encI(imm&0xFFF, rs1, f3, rd, 0x13)}, nil
	}
	switch mn {
	case "slli", "srli", "srai":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		rs1, err2 := reg(args[1])
		sh, err3 := parseImm(args[2], nil, 0)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		if sh > 31 {
			return nil, fmt.Errorf("shift amount %d > 31", sh)
		}
		f3 := uint32(1)
		f7 := uint32(0)
		if mn != "slli" {
			f3 = 5
			if mn == "srai" {
				f7 = 0x20
			}
		}
		return []uint32{encR(f7, sh, rs1, f3, rd, 0x13)}, nil
	}
	if f3, ok := loadOps[mn]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		imm, base, err2 := memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(imm&0xFFF, base, f3, rd, 0x03)}, nil
	}
	if f3, ok := storeOps[mn]; ok {
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err1 := reg(args[0])
		imm, base, err2 := memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encS(imm&0xFFF, rs2, base, f3, 0x23)}, nil
	}
	if f3, ok := branchOps[mn]; ok {
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err1 := reg(args[0])
		rs2, err2 := reg(args[1])
		target, err3 := parseImm(args[2], labels, pc)
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		off := target - pc
		return []uint32{encB(off, rs2, rs1, f3, 0x63)}, nil
	}

	switch mn {
	case "lui", "auipc":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		imm, err2 := parseImm(args[1], labels, pc)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		op := uint32(0x37)
		if mn == "auipc" {
			op = 0x17
		}
		return []uint32{encU(imm<<12, rd, op)}, nil
	case "jal":
		// jal rd, label  |  jal label (rd = ra)
		rd := uint32(1)
		targetArg := args[len(args)-1]
		if len(args) == 2 {
			r, err := reg(args[0])
			if err != nil {
				return nil, err
			}
			rd = r
		}
		target, err := parseImm(targetArg, labels, pc)
		if err != nil {
			return nil, err
		}
		return []uint32{encJ(target-pc, rd, 0x6F)}, nil
	case "jalr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		imm, base, err2 := memOperand(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(imm&0xFFF, base, 0, rd, 0x67)}, nil
	case "rdcycle", "rdcycleh", "rdinstret", "rdinstreth":
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		csr := map[string]uint32{
			"rdcycle": 0xC00, "rdcycleh": 0xC80,
			"rdinstret": 0xC02, "rdinstreth": 0xC82,
		}[mn]
		return []uint32{encI(csr, 0, 2, rd, 0x73)}, nil
	case "csrrw", "csrrs", "csrrc":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		csr, err2 := parseCSR(args[1])
		rs, err3 := reg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return nil, err
		}
		f3 := map[string]uint32{"csrrw": 1, "csrrs": 2, "csrrc": 3}[mn]
		return []uint32{encI(csr, rs, f3, rd, 0x73)}, nil
	case "csrw": // csrrw x0, csr, rs
		if err := need(2); err != nil {
			return nil, err
		}
		csr, err1 := parseCSR(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(csr, rs, 1, 0, 0x73)}, nil
	case "csrr": // csrrs rd, csr, x0
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		csr, err2 := parseCSR(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(csr, 0, 2, rd, 0x73)}, nil
	case "csrs": // csrrs x0, csr, rs
		if err := need(2); err != nil {
			return nil, err
		}
		csr, err1 := parseCSR(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(csr, rs, 2, 0, 0x73)}, nil
	case "wfi":
		return []uint32{0x10500073}, nil
	case "mret":
		return []uint32{0x30200073}, nil
	case "ecall":
		return []uint32{0x00000073}, nil
	case "ebreak":
		return []uint32{0x00100073}, nil
	case "fence":
		return []uint32{0x0000000F}, nil

	// Pseudo-instructions.
	case "nop":
		return []uint32{encI(0, 0, 0, 0, 0x13)}, nil
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(0, rs, 0, rd, 0x13)}, nil
	case "not":
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(0xFFF, rs, 4, rd, 0x13)}, nil
	case "neg":
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encR(0x20, rs, 0, 0, rd, 0x33)}, nil
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		v, err2 := parseImm(args[1], nil, 0)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return liWords(rd, v), nil
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err1 := reg(args[0])
		v, err2 := parseImm(args[1], labels, pc)
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		w := liWords(rd, v)
		for len(w) < 2 {
			w = append(w, encI(0, 0, 0, 0, 0x13)) // pad with nop to keep size fixed
		}
		return w, nil
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := parseImm(args[0], labels, pc)
		if err != nil {
			return nil, err
		}
		return []uint32{encJ(target-pc, 0, 0x6F)}, nil
	case "jr":
		rs, err := reg(args[0])
		if err != nil {
			return nil, err
		}
		return []uint32{encI(0, rs, 0, 0, 0x67)}, nil
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		target, err := parseImm(args[0], labels, pc)
		if err != nil {
			return nil, err
		}
		off := target - pc
		hi := (off + 0x800) & 0xFFFFF000
		lo := (off - hi) & 0xFFF
		return []uint32{encU(hi, 1, 0x17), encI(lo, 1, 0, 1, 0x67)}, nil
	case "ret":
		return []uint32{encI(0, 1, 0, 0, 0x67)}, nil
	case "seqz": // sltiu rd, rs, 1
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encI(1, rs, 3, rd, 0x13)}, nil
	case "snez": // sltu rd, x0, rs
		rd, err1 := reg(args[0])
		rs, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return nil, err
		}
		return []uint32{encR(0, rs, 0, 3, rd, 0x33)}, nil
	case "beqz":
		return encodeBranchZero(args, pc, labels, 0)
	case "bnez":
		return encodeBranchZero(args, pc, labels, 1)
	case "bgt":
		rs1, _ := reg(args[0])
		rs2, _ := reg(args[1])
		target, err := parseImm(args[2], labels, pc)
		if err != nil {
			return nil, err
		}
		return []uint32{encB(target-pc, rs1, rs2, 4, 0x63)}, nil // blt rs2, rs1
	case "ble":
		rs1, _ := reg(args[0])
		rs2, _ := reg(args[1])
		target, err := parseImm(args[2], labels, pc)
		if err != nil {
			return nil, err
		}
		return []uint32{encB(target-pc, rs1, rs2, 5, 0x63)}, nil // bge rs2, rs1
	}
	return nil, fmt.Errorf("unknown mnemonic %q", mn)
}

func encodeBranchZero(args []string, pc uint32, labels map[string]uint32, f3 uint32) ([]uint32, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("want 2 operands")
	}
	rs, err := reg(args[0])
	if err != nil {
		return nil, err
	}
	target, err := parseImm(args[1], labels, pc)
	if err != nil {
		return nil, err
	}
	return []uint32{encB(target-pc, 0, rs, f3, 0x63)}, nil
}

// liWords expands li into one or two instructions.
func liWords(rd, v uint32) []uint32 {
	if fitsI12(int64(int32(v))) {
		return []uint32{encI(v&0xFFF, 0, 0, rd, 0x13)}
	}
	hi := (v + 0x800) & 0xFFFFF000
	lo := (v - hi) & 0xFFF
	return []uint32{encU(hi, rd, 0x37), encI(lo, rd, 0, rd, 0x13)}
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
