package riscv

import "testing"

// runAsm assembles src at 0, loads it into a 64 KiB RAM, runs to halt and
// returns the CPU for register inspection.
func runAsm(t *testing.T, src string) (*CPU, *RAM) {
	t.Helper()
	words, err := Assemble(src, 0)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := NewRAM(0, 1<<16)
	if err := ram.LoadWords(0, words); err != nil {
		t.Fatal(err)
	}
	cpu := New(ram, 0)
	if err := cpu.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu, ram
}

func TestArithmeticImmediates(t *testing.T) {
	cpu, _ := runAsm(t, `
		li   a0, 100
		addi a0, a0, -58
		xori a1, a0, 0xFF
		ori  a2, a0, 0x700
		andi a3, a2, 0x0F0
		slti a4, a0, 43
		sltiu a5, a0, 42
		ecall
	`)
	if cpu.Regs[10] != 42 {
		t.Errorf("a0 = %d, want 42", cpu.Regs[10])
	}
	if cpu.Regs[11] != 42^0xFF {
		t.Errorf("a1 = %d", cpu.Regs[11])
	}
	if cpu.Regs[12] != 42|0x700 {
		t.Errorf("a2 = %d", cpu.Regs[12])
	}
	if cpu.Regs[13] != (42|0x700)&0x0F0 {
		t.Errorf("a3 = %d", cpu.Regs[13])
	}
	if cpu.Regs[14] != 1 {
		t.Errorf("slti: a4 = %d, want 1", cpu.Regs[14])
	}
	if cpu.Regs[15] != 0 {
		t.Errorf("sltiu: a5 = %d, want 0", cpu.Regs[15])
	}
}

func TestRegisterOps(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, 13
		li t1, 5
		add a0, t0, t1
		sub a1, t0, t1
		sll a2, t0, t1
		xor a3, t0, t1
		or  a4, t0, t1
		and a5, t0, t1
		sltu a6, t1, t0
		ecall
	`)
	want := map[int]uint32{10: 18, 11: 8, 12: 13 << 5, 13: 13 ^ 5, 14: 13 | 5, 15: 13 & 5, 16: 1}
	for r, w := range want {
		if cpu.Regs[r] != w {
			t.Errorf("x%d = %d, want %d", r, cpu.Regs[r], w)
		}
	}
}

func TestShiftsAndNegatives(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, -16
		srai a0, t0, 2
		srli a1, t0, 28
		slli a2, t0, 1
		ecall
	`)
	if int32(cpu.Regs[10]) != -4 {
		t.Errorf("srai: %d, want -4", int32(cpu.Regs[10]))
	}
	if cpu.Regs[11] != 0xF {
		t.Errorf("srli: %#x, want 0xF", cpu.Regs[11])
	}
	if int32(cpu.Regs[12]) != -32 {
		t.Errorf("slli: %d, want -32", int32(cpu.Regs[12]))
	}
}

func TestMulDiv(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, -7
		li t1, 3
		mul  a0, t0, t1
		mulh a1, t0, t1
		div  a2, t0, t1
		rem  a3, t0, t1
		li t2, 100
		li t3, 7
		divu a4, t2, t3
		remu a5, t2, t3
		li t4, 0
		div  a6, t2, t4
		rem  a7, t2, t4
		ecall
	`)
	if int32(cpu.Regs[10]) != -21 {
		t.Errorf("mul: %d", int32(cpu.Regs[10]))
	}
	if int32(cpu.Regs[11]) != -1 { // high word of -21
		t.Errorf("mulh: %d", int32(cpu.Regs[11]))
	}
	if int32(cpu.Regs[12]) != -2 {
		t.Errorf("div: %d, want -2", int32(cpu.Regs[12]))
	}
	if int32(cpu.Regs[13]) != -1 {
		t.Errorf("rem: %d, want -1", int32(cpu.Regs[13]))
	}
	if cpu.Regs[14] != 14 || cpu.Regs[15] != 2 {
		t.Errorf("divu/remu: %d, %d", cpu.Regs[14], cpu.Regs[15])
	}
	if cpu.Regs[16] != ^uint32(0) {
		t.Errorf("div by zero: %#x, want all-ones", cpu.Regs[16])
	}
	if cpu.Regs[17] != 100 {
		t.Errorf("rem by zero: %d, want dividend", cpu.Regs[17])
	}
}

func TestMulhVariants(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, -1
		li t1, -1
		mulhu  a0, t0, t1
		mulhsu a1, t0, t1
		mulh   a2, t0, t1
		ecall
	`)
	if cpu.Regs[10] != 0xFFFFFFFE {
		t.Errorf("mulhu(-1,-1): %#x, want 0xFFFFFFFE", cpu.Regs[10])
	}
	if cpu.Regs[11] != 0xFFFFFFFF {
		t.Errorf("mulhsu(-1,-1): %#x, want 0xFFFFFFFF", cpu.Regs[11])
	}
	if cpu.Regs[12] != 0 {
		t.Errorf("mulh(-1,-1): %#x, want 0", cpu.Regs[12])
	}
}

func TestLoadsStores(t *testing.T) {
	cpu, ram := runAsm(t, `
		li  t0, 0x1000
		li  t1, 0x12345678
		sw  t1, 0(t0)
		lw  a0, 0(t0)
		lh  a1, 0(t0)
		lhu a2, 2(t0)
		lb  a3, 3(t0)
		lbu a4, 1(t0)
		li  t2, -2
		sb  t2, 8(t0)
		lb  a5, 8(t0)
		lbu a6, 8(t0)
		sh  t2, 12(t0)
		lhu a7, 12(t0)
		ecall
	`)
	if cpu.Regs[10] != 0x12345678 {
		t.Errorf("lw: %#x", cpu.Regs[10])
	}
	if cpu.Regs[11] != 0x5678 {
		t.Errorf("lh: %#x", cpu.Regs[11])
	}
	if cpu.Regs[12] != 0x1234 {
		t.Errorf("lhu: %#x", cpu.Regs[12])
	}
	if cpu.Regs[13] != 0x12 {
		t.Errorf("lb: %#x", cpu.Regs[13])
	}
	if cpu.Regs[14] != 0x56 {
		t.Errorf("lbu: %#x", cpu.Regs[14])
	}
	if int32(cpu.Regs[15]) != -2 {
		t.Errorf("lb signed: %d", int32(cpu.Regs[15]))
	}
	if cpu.Regs[16] != 0xFE {
		t.Errorf("lbu: %#x", cpu.Regs[16])
	}
	if cpu.Regs[17] != 0xFFFE {
		t.Errorf("lhu after sh: %#x", cpu.Regs[17])
	}
	if ram.Word(0x1000) != 0x12345678 {
		t.Errorf("memory word: %#x", ram.Word(0x1000))
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	cpu, _ := runAsm(t, `
		li a0, 0
		li t0, 1
		li t1, 10
	loop:
		add a0, a0, t0
		addi t0, t0, 1
		ble t0, t1, loop
		ecall
	`)
	if cpu.Regs[10] != 55 {
		t.Errorf("sum = %d, want 55", cpu.Regs[10])
	}
}

func TestFunctionCall(t *testing.T) {
	// call/ret with a leaf function computing a0*2+1.
	cpu, _ := runAsm(t, `
		li a0, 20
		call double_plus_one
		ecall
	double_plus_one:
		slli a0, a0, 1
		addi a0, a0, 1
		ret
	`)
	if cpu.Regs[10] != 41 {
		t.Errorf("a0 = %d, want 41", cpu.Regs[10])
	}
}

func TestFibonacciProgram(t *testing.T) {
	cpu, _ := runAsm(t, `
		li a0, 0      # fib(0)
		li a1, 1      # fib(1)
		li t0, 10     # iterations
	fib:
		beqz t0, done
		add t1, a0, a1
		mv a0, a1
		mv a1, t1
		addi t0, t0, -1
		j fib
	done:
		ecall
	`)
	if cpu.Regs[10] != 55 { // fib(10)
		t.Errorf("fib(10) = %d, want 55", cpu.Regs[10])
	}
}

func TestBranchVariants(t *testing.T) {
	cpu, _ := runAsm(t, `
		li a0, 0
		li t0, -1
		li t1, 1
		blt t0, t1, l1
		addi a0, a0, 1  # skipped
	l1:
		bltu t0, t1, l2 # not taken: 0xFFFFFFFF > 1 unsigned
		addi a0, a0, 2
	l2:
		bge t1, t0, l3
		addi a0, a0, 4  # skipped
	l3:
		bgeu t0, t1, l4
		addi a0, a0, 8  # skipped
	l4:
		bne t0, t1, l5
		addi a0, a0, 16 # skipped
	l5:
		beq t0, t0, l6
		addi a0, a0, 32 # skipped
	l6:
		ecall
	`)
	if cpu.Regs[10] != 2 {
		t.Errorf("branch flags = %d, want 2", cpu.Regs[10])
	}
}

func TestLuiAuipcJalr(t *testing.T) {
	cpu, _ := runAsm(t, `
		lui a0, 0x12345
		srli a0, a0, 12
		auipc a1, 0
		jal t0, next
		addi a0, a0, 99  # skipped
	next:
		ecall
	`)
	if cpu.Regs[10] != 0x12345 {
		t.Errorf("lui: %#x", cpu.Regs[10])
	}
	if cpu.Regs[11] != 8 { // auipc at address 8 (after 2-word li-expanded lui? lui is 1 word + srli)
		t.Errorf("auipc: %#x, want 8", cpu.Regs[11])
	}
	if cpu.Regs[5] != 16 { // jal link = pc+4
		t.Errorf("jal link: %d, want 16", cpu.Regs[5])
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, 7
		add x0, t0, t0
		mv a0, x0
		ecall
	`)
	if cpu.Regs[10] != 0 {
		t.Errorf("x0 = %d, want 0", cpu.Regs[10])
	}
}

func TestTimingModel(t *testing.T) {
	// 3 one-cycle ALU instructions (li small = addi) + ecall.
	cpu, _ := runAsm(t, `
		li t0, 1
		li t1, 2
		add t2, t0, t1
		ecall
	`)
	if cpu.Cycle != 3+1 {
		t.Errorf("cycles = %d, want 4", cpu.Cycle)
	}
	// Loads cost 2, stores 2, taken branches 3, mul 2, div 37.
	cpu2, _ := runAsm(t, `
		li t0, 0x100
		sw t0, 0(t0)
		lw t1, 0(t0)
		mul t2, t0, t1
		div t3, t0, t1
		ecall
	`)
	want := int64(1 + 2 + 2 + 2 + 37 + 1)
	if cpu2.Cycle != want {
		t.Errorf("cycles = %d, want %d", cpu2.Cycle, want)
	}
}

func TestIllegalInstruction(t *testing.T) {
	ram := NewRAM(0, 4096)
	_ = ram.Write(0, 0xFFFFFFFF, 4)
	cpu := New(ram, 0)
	if err := cpu.Step(); err == nil {
		t.Fatal("illegal instruction executed")
	}
}

func TestBusFault(t *testing.T) {
	ram := NewRAM(0, 4096)
	words, _ := Assemble("li t0, 0x10000\nlw t1, 0(t0)\necall", 0)
	_ = ram.LoadWords(0, words)
	cpu := New(ram, 0)
	if err := cpu.Run(100); err == nil {
		t.Fatal("out-of-range load did not fault")
	}
}

func TestRunInstructionLimit(t *testing.T) {
	words, _ := Assemble("loop: j loop", 0)
	ram := NewRAM(0, 4096)
	_ = ram.LoadWords(0, words)
	cpu := New(ram, 0)
	if err := cpu.Run(100); err == nil {
		t.Fatal("infinite loop did not hit the instruction limit")
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frobnicate a0, a1",
		"addi a0, a1, 99999",
		"lw a0, a1",
		"li a0",
		"add a0, a1, qq",
		"9label: nop",
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestAssembleWordDirective(t *testing.T) {
	words, err := Assemble(".word 0xDEADBEEF\n.word 42", 0)
	if err != nil {
		t.Fatal(err)
	}
	if words[0] != 0xDEADBEEF || words[1] != 42 {
		t.Fatalf("words = %#x", words)
	}
}

func TestLargeImmediateLi(t *testing.T) {
	cpu, _ := runAsm(t, `
		li a0, 0x12345678
		li a1, -1
		li a2, 0xFFFFF800
		ecall
	`)
	if cpu.Regs[10] != 0x12345678 {
		t.Errorf("li large: %#x", cpu.Regs[10])
	}
	if cpu.Regs[11] != 0xFFFFFFFF {
		t.Errorf("li -1: %#x", cpu.Regs[11])
	}
	if cpu.Regs[12] != 0xFFFFF800 {
		t.Errorf("li 0xFFFFF800: %#x", cpu.Regs[12])
	}
}

func TestHaltCode(t *testing.T) {
	cpu, _ := runAsm(t, "li a0, 77\necall")
	if cpu.HaltCode != 77 {
		t.Errorf("halt code = %d, want 77", cpu.HaltCode)
	}
}

func TestSeqzSnez(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, 0
		li t1, 42
		seqz a0, t0
		seqz a1, t1
		snez a2, t0
		snez a3, t1
		ecall
	`)
	if cpu.Regs[10] != 1 || cpu.Regs[11] != 0 || cpu.Regs[12] != 0 || cpu.Regs[13] != 1 {
		t.Fatalf("seqz/snez: %v", cpu.Regs[10:14])
	}
}
