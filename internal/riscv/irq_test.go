package riscv

import "testing"

func TestCSRReadWrite(t *testing.T) {
	cpu, _ := runAsm(t, `
		li t0, 0x1888
		csrw mstatus, t0
		csrr a0, mstatus
		li t1, 0x800
		csrs mie, t1
		csrr a1, mie
		li t2, 0x100
		csrw mtvec, t2
		csrr a2, mtvec
		csrrc a3, mstatus, t0   # clear bits, return old
		csrr a4, mstatus
		ecall
	`)
	if cpu.Regs[10] != 0x1888 {
		t.Errorf("mstatus = %#x", cpu.Regs[10])
	}
	if cpu.Regs[11] != 0x800 {
		t.Errorf("mie = %#x", cpu.Regs[11])
	}
	if cpu.Regs[12] != 0x100 {
		t.Errorf("mtvec = %#x", cpu.Regs[12])
	}
	if cpu.Regs[13] != 0x1888 || cpu.Regs[14] != 0 {
		t.Errorf("csrrc old=%#x new=%#x", cpu.Regs[13], cpu.Regs[14])
	}
}

func TestCSRWriteToReadOnlyFaults(t *testing.T) {
	words, err := Assemble("li t0, 5\ncsrw cycle, t0", 0)
	if err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(0, 4096)
	_ = ram.LoadWords(0, words)
	cpu := New(ram, 0)
	if err := cpu.Run(10); err == nil {
		t.Fatal("write to cycle CSR accepted")
	}
}

// TestExternalInterrupt: a pending IRQ with interrupts enabled vectors to
// mtvec; the handler runs and mret resumes the interrupted flow.
func TestExternalInterrupt(t *testing.T) {
	src := `
		la   t0, handler
		csrw mtvec, t0
		li   t0, 0x800
		csrw mie, t0        # MEIE
		li   t0, 0x8
		csrw mstatus, t0    # MIE
		li   a0, 0
		li   t1, 50
	loop:
		addi a0, a0, 1      # interrupted somewhere in here
		blt  a0, t1, loop
		ecall
	handler:
		li   a1, 777        # mark that the handler ran
		csrr a2, mcause
		mret
	`
	words, err := Assemble(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(0, 1<<16)
	_ = ram.LoadWords(0, words)
	cpu := New(ram, 0)
	fired := false
	cpu.IRQPending = func() bool {
		// Assert the line once, partway through the loop; deassert after
		// the trap is taken (level-triggered device model).
		if !fired && cpu.Insns == 20 {
			return true
		}
		return false
	}
	// Clear the line once trapped (when PC reaches the handler).
	origPending := cpu.IRQPending
	cpu.IRQPending = func() bool {
		if cpu.MCause == causeExternal && cpu.PC >= 0x40 {
			fired = true
		}
		return origPending()
	}
	if err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[11] != 777 {
		t.Fatal("handler did not run")
	}
	if cpu.Regs[12] != causeExternal {
		t.Errorf("mcause = %#x", cpu.Regs[12])
	}
	if cpu.Regs[10] != 50 {
		t.Errorf("loop did not complete after mret: a0 = %d", cpu.Regs[10])
	}
}

// TestWFIWaitsForInterrupt: WFI stalls, counting wait cycles, until the
// line is asserted; with interrupts globally disabled execution simply
// resumes after the WFI (the "wait for event" polling idiom).
func TestWFIWaitsForInterrupt(t *testing.T) {
	words, err := Assemble(`
		li a0, 1
		wfi
		li a0, 2
		ecall
	`, 0)
	if err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(0, 4096)
	_ = ram.LoadWords(0, words)
	cpu := New(ram, 0)
	wake := int64(200)
	cpu.IRQPending = func() bool { return cpu.Cycle >= wake }
	if err := cpu.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[10] != 2 {
		t.Fatalf("a0 = %d, want 2 (resumed after WFI)", cpu.Regs[10])
	}
	if cpu.WaitCycles < 150 {
		t.Fatalf("wait cycles = %d, want ≈197", cpu.WaitCycles)
	}
	if cpu.Cycle < wake {
		t.Fatalf("woke at cycle %d, before the line asserted at %d", cpu.Cycle, wake)
	}
}

func TestWFIWithoutIRQSourceRunsForever(t *testing.T) {
	words, _ := Assemble("wfi\necall", 0)
	ram := NewRAM(0, 4096)
	_ = ram.LoadWords(0, words)
	cpu := New(ram, 0)
	if err := cpu.Run(100); err == nil {
		t.Fatal("WFI with no interrupt source should hit the instruction limit")
	}
}

func TestCSRRoundTripDisasm(t *testing.T) {
	for _, src := range []string{
		"wfi", "mret",
		"csrrw x5, 0x300, x6",
		"csrrs x0, 0x304, x7",
		"csrrc x1, 0x342, x0",
	} {
		w1, err := Assemble(src, 0)
		if err != nil {
			t.Fatalf("assemble %q: %v", src, err)
		}
		text := Disassemble(w1[0], 0)
		w2, err := Assemble(text, 0)
		if err != nil {
			t.Fatalf("reassemble %q: %v", text, err)
		}
		if w1[0] != w2[0] {
			t.Errorf("%q → %q: %#x != %#x", src, text, w1[0], w2[0])
		}
	}
}
