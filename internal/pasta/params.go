// Package pasta implements the PASTA family of HHE-enabling symmetric
// stream ciphers over prime fields F_p (Dobraunig et al., TCHES 2023),
// the scheme accelerated by the paper's cryptoprocessor.
//
// Structure (Sec. II-B of the paper): the 2t-element state, initialized
// with the secret key and split into halves (X_L, X_R), passes through
// R + 1 affine layers A_j. Each A_j draws four public pseudo-random
// vectors from SHAKE128(nonce‖counter): two seeds that expand into
// invertible t×t matrices via the sequential PHOTON/LED construction
// (eq. 1) and two round-constant vectors. A_j computes M·X + RC on each
// half and then mixes the halves as (2·X_L + X_R, X_L + 2·X_R). The first
// R - 1 affine layers are followed by the Feistel S-box S′, the R-th by
// the cube S-box S, and the final affine layer by truncation to X_L,
// which becomes the keystream block. Ciphertext = message + keystream
// (mod p).
package pasta

import (
	"fmt"

	"repro/internal/ff"
)

// Variant selects a PASTA instance shape.
type Variant int

const (
	// Pasta3 is the 3-round variant with t = 128 (state 2t = 256).
	Pasta3 Variant = iota
	// Pasta4 is the 4-round variant with t = 32 (state 2t = 64).
	Pasta4
	// Toy is a reduced instance (small t, few rounds) used to exercise
	// the homomorphic decryption circuit at tractable cost. Not secure.
	Toy
)

func (v Variant) String() string {
	switch v {
	case Pasta3:
		return "PASTA-3"
	case Pasta4:
		return "PASTA-4"
	case Toy:
		return "PASTA-toy"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Params fixes a PASTA instance: variant shape and field modulus.
type Params struct {
	Variant Variant
	T       int        // block size; the state has 2t elements
	Rounds  int        // number of S-box rounds R; affine layers = R + 1
	Mod     ff.Modulus // plaintext/ciphertext field
}

// NewParams returns the standard parameters for a variant over the given
// modulus (the paper evaluates ω ∈ {17, 33, 54}-bit moduli).
func NewParams(v Variant, mod ff.Modulus) (Params, error) {
	switch v {
	case Pasta3:
		return Params{Variant: Pasta3, T: 128, Rounds: 3, Mod: mod}, nil
	case Pasta4:
		return Params{Variant: Pasta4, T: 32, Rounds: 4, Mod: mod}, nil
	default:
		return Params{}, fmt.Errorf("pasta: NewParams supports Pasta3 and Pasta4, got %v", v)
	}
}

// MustParams is NewParams that panics on error.
func MustParams(v Variant, mod ff.Modulus) Params {
	p, err := NewParams(v, mod)
	if err != nil {
		panic(err)
	}
	return p
}

// ToyParams builds a reduced instance for homomorphic-evaluation demos
// and exhaustive testing. t must be ≥ 2 and rounds ≥ 1.
func ToyParams(t, rounds int, mod ff.Modulus) (Params, error) {
	if t < 2 || rounds < 1 {
		return Params{}, fmt.Errorf("pasta: toy instance needs t ≥ 2 and rounds ≥ 1 (got t=%d, rounds=%d)", t, rounds)
	}
	return Params{Variant: Toy, T: t, Rounds: rounds, Mod: mod}, nil
}

// StateSize returns 2t, the number of field elements in the state (and in
// the key).
func (p Params) StateSize() int { return 2 * p.T }

// AffineLayers returns R + 1, the number of affine layers per permutation.
func (p Params) AffineLayers() int { return p.Rounds + 1 }

// XOFElements returns the number of pseudo-random field elements one
// permutation consumes: 4t per affine layer (two matrix seed rows, two
// round-constant vectors). PASTA-3: 2048; PASTA-4: 640 — the demands
// quoted in Sec. III-A of the paper.
func (p Params) XOFElements() int { return 4 * p.T * p.AffineLayers() }

// MulCount returns the number of modular multiplications one permutation
// performs: per affine layer 2·t² for matrix generation (MAC recurrence,
// rows 2..t) — counted as t² to match the paper's accounting — plus t²
// per half for the matrix–vector products, and the S-box multiplications.
// The paper's Sec. I-A headline: PASTA-3 ≈ 2^18.
func (p Params) MulCount() int {
	t := p.T
	perAffine := 2*t*t /* matgen both halves */ + 2*t*t                    /* matmul both halves */
	sbox := (p.Rounds-1)*2*t /* Feistel: one square per element */ + 2*2*t /* cube: two muls per element */
	return p.AffineLayers()*perAffine + sbox
}

func (p Params) String() string {
	return fmt.Sprintf("%v(t=%d, R=%d, %v)", p.Variant, p.T, p.Rounds, p.Mod)
}

// Validate checks internal consistency.
func (p Params) Validate() error {
	if p.T < 2 {
		return fmt.Errorf("pasta: t = %d too small", p.T)
	}
	if p.Rounds < 1 {
		return fmt.Errorf("pasta: rounds = %d too small", p.Rounds)
	}
	if p.Mod.P() == 0 {
		return fmt.Errorf("pasta: modulus not initialized")
	}
	if p.Mod.P()%3 != 2 {
		return fmt.Errorf("pasta: p = %d has p mod 3 = %d; cube S-box is not a bijection", p.Mod.P(), p.Mod.P()%3)
	}
	return nil
}
