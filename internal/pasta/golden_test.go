package pasta

import (
	"testing"

	"repro/internal/ff"
)

// Golden known-answer tests pin the keystream of this implementation so
// that refactors of the field arithmetic, XOF conventions, or permutation
// layers cannot silently change the cipher. (The values are this
// reproduction's own normative vectors — see the xof package doc for the
// generation conventions — not vectors from the PASTA reference code.)
func TestGoldenKeystreamPasta4(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := c.KeyStream(1, 2)[:8]
	want := goldenP4
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PASTA-4 golden keystream drifted at %d: got %v, want %v\n"+
				"If this change is intentional, regenerate the golden values.",
				i, got[:8], want)
		}
	}
}

func TestGoldenKeystreamPasta3(t *testing.T) {
	par := MustParams(Pasta3, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "golden"))
	if err != nil {
		t.Fatal(err)
	}
	got := c.KeyStream(1, 2)[:8]
	for i := range goldenP3 {
		if got[i] != goldenP3[i] {
			t.Fatalf("PASTA-3 golden keystream drifted at %d: got %v, want %v",
				i, got[:8], goldenP3)
		}
	}
}

// Golden vectors generated once with this implementation (seed "golden",
// nonce 1, block 2, first 8 elements).
var (
	goldenP4 = ff.Vec{30202, 59975, 22068, 45713, 913, 23296, 29710, 30707}
	goldenP3 = ff.Vec{6831, 63060, 64928, 11736, 6772, 10308, 46478, 21018}
)
