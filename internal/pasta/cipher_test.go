package pasta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ff"
	"repro/internal/xof"
)

func toyCipher(t *testing.T, size, rounds int, mod ff.Modulus) *Cipher {
	t.Helper()
	par, err := ToyParams(size, rounds, mod)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCipher(par, KeyFromSeed(par, "test"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParamsShapes(t *testing.T) {
	p3 := MustParams(Pasta3, ff.P17)
	if p3.T != 128 || p3.Rounds != 3 || p3.StateSize() != 256 || p3.AffineLayers() != 4 {
		t.Fatalf("PASTA-3 shape wrong: %+v", p3)
	}
	p4 := MustParams(Pasta4, ff.P17)
	if p4.T != 32 || p4.Rounds != 4 || p4.StateSize() != 64 || p4.AffineLayers() != 5 {
		t.Fatalf("PASTA-4 shape wrong: %+v", p4)
	}
}

// TestXOFElementDemand pins the paper's Sec. III-A numbers: PASTA-3/-4
// demand 2048/640 pseudo-random coefficients per block.
func TestXOFElementDemand(t *testing.T) {
	if got := MustParams(Pasta3, ff.P17).XOFElements(); got != 2048 {
		t.Errorf("PASTA-3 XOF elements = %d, want 2048", got)
	}
	if got := MustParams(Pasta4, ff.P17).XOFElements(); got != 640 {
		t.Errorf("PASTA-4 XOF elements = %d, want 640", got)
	}
}

// TestMulCountClaim pins the paper's Sec. I-A claim: PASTA-3 costs ≈2^18
// multiplications per permutation.
func TestMulCountClaim(t *testing.T) {
	got := MustParams(Pasta3, ff.P17).MulCount()
	if got < 1<<18 || got > 1<<18+4096 {
		t.Errorf("PASTA-3 mul count = %d, want ≈2^18 = %d", got, 1<<18)
	}
}

func TestEncryptDecryptRoundTripToy(t *testing.T) {
	for _, mod := range []ff.Modulus{ff.P17, ff.P33, ff.P54} {
		c := toyCipher(t, 8, 3, mod)
		rng := rand.New(rand.NewSource(1))
		msg := ff.NewVec(50) // 7 blocks, last partial
		for i := range msg {
			msg[i] = rng.Uint64() % mod.P()
		}
		ct, err := c.Encrypt(99, msg)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Equal(msg) {
			t.Fatal("ciphertext equals plaintext")
		}
		back, err := c.Decrypt(99, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(msg) {
			t.Fatalf("%v: roundtrip failed", mod)
		}
	}
}

func TestEncryptDecryptRoundTripStandard(t *testing.T) {
	for _, v := range []Variant{Pasta3, Pasta4} {
		par := MustParams(v, ff.P17)
		c, err := NewCipher(par, KeyFromSeed(par, "std"))
		if err != nil {
			t.Fatal(err)
		}
		msg := ff.NewVec(par.T)
		for i := range msg {
			msg[i] = uint64(i*31) % par.Mod.P()
		}
		ct, err := c.EncryptBlock(7, 0, msg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.DecryptBlock(7, 0, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(msg) {
			t.Fatalf("%v roundtrip failed", v)
		}
	}
}

func TestKeyStreamDeterministicAndNonceSeparated(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "k"))
	a := c.KeyStream(1, 0)
	b := c.KeyStream(1, 0)
	if !a.Equal(b) {
		t.Fatal("keystream not deterministic")
	}
	if a.Equal(c.KeyStream(2, 0)) {
		t.Fatal("different nonces gave equal keystream")
	}
	if a.Equal(c.KeyStream(1, 1)) {
		t.Fatal("different blocks gave equal keystream")
	}
}

func TestDifferentKeysDifferentStreams(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c1, _ := NewCipher(par, KeyFromSeed(par, "k1"))
	c2, _ := NewCipher(par, KeyFromSeed(par, "k2"))
	if c1.KeyStream(1, 0).Equal(c2.KeyStream(1, 0)) {
		t.Fatal("different keys gave equal keystream")
	}
}

// TestMatrixInvertibleProperty: the sequential construction of eq. (1)
// must yield invertible matrices for random seeds with nonzero α₀.
func TestMatrixInvertibleProperty(t *testing.T) {
	for _, mod := range []ff.Modulus{ff.P17, ff.P33} {
		for trial := uint64(0); trial < 25; trial++ {
			s := xof.NewSampler(mod, trial, 1234)
			seed := s.Vector(16, true)
			mat := ExpandMatrix(mod, seed)
			if !mat.IsInvertible(mod) {
				t.Fatalf("%v: matrix from seed %v is singular", mod, seed)
			}
		}
	}
}

// TestMatrixSingularWithZeroLead documents why α₀ must be nonzero: a zero
// leading seed element makes the sequential matrix singular.
func TestMatrixSingularWithZeroLead(t *testing.T) {
	mod := ff.P17
	seed := ff.Vec{0, 5, 9, 11}
	if ExpandMatrix(mod, seed).IsInvertible(mod) {
		t.Fatal("matrix with α₀ = 0 unexpectedly invertible")
	}
}

// TestNextMatrixRowMatchesCompanionMultiply: the MAC recurrence equals
// multiplication by the companion matrix of the seed row.
func TestNextMatrixRowMatchesCompanionMultiply(t *testing.T) {
	mod := ff.P17
	s := xof.NewSampler(mod, 5, 6)
	tt := 8
	seed := s.Vector(tt, true)
	// Companion matrix C: subdiagonal identity, last row = seed.
	c := ff.NewMatrix(tt)
	for i := 0; i < tt-1; i++ {
		c.Set(i, i+1, 1)
	}
	copy(c.Row(tt-1), seed)
	row := seed.Clone()
	for step := 0; step < tt; step++ {
		next := NextMatrixRow(mod, seed, row)
		want := ff.NewVec(tt)
		// want = row · C, i.e. want[j] = Σ_i row[i]·C[i][j].
		for j := 0; j < tt; j++ {
			var acc uint64
			for i := 0; i < tt; i++ {
				acc = mod.Add(acc, mod.Mul(row[i], c.At(i, j)))
			}
			want[j] = acc
		}
		if !next.Equal(want) {
			t.Fatalf("step %d: recurrence %v != row·C %v", step, next, want)
		}
		row = next
	}
}

// TestApplyAffineMatchesExpandedMatrix: the streaming row-by-row affine
// equals the materialized M·x + rc.
func TestApplyAffineMatchesExpandedMatrix(t *testing.T) {
	mod := ff.P33
	s := xof.NewSampler(mod, 9, 9)
	tt := 12
	seed := s.Vector(tt, true)
	rc := s.Vector(tt, false)
	x := s.Vector(tt, false)

	streamed := x.Clone()
	ApplyAffine(mod, streamed, seed, rc)

	mat := ExpandMatrix(mod, seed)
	want := ff.NewVec(tt)
	mat.MulVec(mod, want, x)
	ff.AddVec(mod, want, want, rc)

	if !streamed.Equal(want) {
		t.Fatalf("streamed affine %v != materialized %v", streamed, want)
	}
}

// TestMixInvertible: Mix is the matrix (2 1; 1 2) across halves, which is
// invertible when det = 3 ≠ 0; applying the inverse map recovers input.
func TestMixInvertible(t *testing.T) {
	mod := ff.P17
	s := xof.NewSampler(mod, 1, 2)
	state := s.Vector(16, false)
	orig := state.Clone()
	Mix(mod, state)
	// Inverse of (2 1; 1 2) is 3⁻¹·(2 -1; -1 2).
	inv3 := mod.Inv(3)
	tt := 8
	l, r := state[:tt], state[tt:]
	back := ff.NewVec(16)
	for i := 0; i < tt; i++ {
		back[i] = mod.Mul(inv3, mod.Sub(mod.Mul(2, l[i]), r[i]))
		back[tt+i] = mod.Mul(inv3, mod.Sub(mod.Mul(2, r[i]), l[i]))
	}
	if !back.Equal(orig) {
		t.Fatal("Mix inverse failed")
	}
}

// TestSboxFeistelInvertible: S′ is invertible by forward substitution.
func TestSboxFeistelInvertible(t *testing.T) {
	mod := ff.P17
	s := xof.NewSampler(mod, 3, 4)
	state := s.Vector(10, false)
	orig := state.Clone()
	SboxFeistel(mod, state)
	// Invert: x[j] = y[j] - x[j-1]², left to right.
	back := state.Clone()
	for j := 1; j < len(back); j++ {
		back[j] = mod.Sub(back[j], mod.Sqr(back[j-1]))
	}
	if !back.Equal(orig) {
		t.Fatal("Feistel S-box inverse failed")
	}
}

// TestSboxCubeBijective: x³ is a bijection for p ≡ 2 (mod 3); invert via
// x^(d) with 3d ≡ 1 (mod p-1).
func TestSboxCubeBijective(t *testing.T) {
	mod := ff.P17
	p := mod.P()
	// d = 3⁻¹ mod (p-1). p-1 = 65536; 3·43691 = 131073 = 2·65536 + 1.
	d := uint64(43691)
	if (3*d)%(p-1) != 1 {
		t.Fatalf("bad cube inverse exponent %d", d)
	}
	s := xof.NewSampler(mod, 4, 5)
	state := s.Vector(10, false)
	orig := state.Clone()
	SboxCube(mod, state)
	for j := range state {
		state[j] = mod.Exp(state[j], d)
	}
	if !state.Equal(orig) {
		t.Fatal("cube S-box inverse failed")
	}
}

// TestPermutationDiffusion: flipping one key element should change (on
// average) about half the... at minimum, many keystream elements.
func TestPermutationDiffusion(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	k1 := KeyFromSeed(par, "diff")
	k2 := Key(ff.Vec(k1).Clone())
	k2[17] = par.Mod.Add(k2[17], 1)
	c1, _ := NewCipher(par, k1)
	c2, _ := NewCipher(par, k2)
	ks1, ks2 := c1.KeyStream(0, 0), c2.KeyStream(0, 0)
	diff := 0
	for i := range ks1 {
		if ks1[i] != ks2[i] {
			diff++
		}
	}
	if diff < par.T*9/10 {
		t.Fatalf("only %d/%d keystream elements changed; diffusion too weak", diff, par.T)
	}
}

// TestScheduleMatchesSampler: DeriveSchedule consumes exactly
// XOFElements() accepted samples.
func TestScheduleMatchesSampler(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	layers := DeriveSchedule(par, 11, 3)
	if len(layers) != par.AffineLayers() {
		t.Fatalf("schedule has %d layers, want %d", len(layers), par.AffineLayers())
	}
	total := 0
	for _, l := range layers {
		total += len(l.MatSeedL) + len(l.MatSeedR) + len(l.RCL) + len(l.RCR)
		if l.MatSeedL[0] == 0 || l.MatSeedR[0] == 0 {
			t.Fatal("matrix seed has zero leading element")
		}
	}
	if total != par.XOFElements() {
		t.Fatalf("schedule has %d elements, want %d", total, par.XOFElements())
	}
}

// TestPermuteConsistentWithSchedule: replaying the permutation with
// materialized matrices must give the same state as the streaming path.
func TestPermuteConsistentWithSchedule(t *testing.T) {
	par := MustParams(Pasta4, ff.P33)
	c, _ := NewCipher(par, KeyFromSeed(par, "sched"))
	nonce, block := uint64(21), uint64(4)

	want := c.KeyStream(nonce, block)

	layers := DeriveSchedule(par, nonce, block)
	state := ff.Vec(c.Key())
	tt := par.T
	mod := par.Mod
	for i, l := range layers {
		ml, mr := ExpandMatrix(mod, l.MatSeedL), ExpandMatrix(mod, l.MatSeedR)
		newL, newR := ff.NewVec(tt), ff.NewVec(tt)
		ml.MulVec(mod, newL, state[:tt])
		mr.MulVec(mod, newR, state[tt:])
		ff.AddVec(mod, newL, newL, l.RCL)
		ff.AddVec(mod, newR, newR, l.RCR)
		copy(state[:tt], newL)
		copy(state[tt:], newR)
		Mix(mod, state)
		switch {
		case i < par.Rounds-1:
			SboxFeistel(mod, state)
		case i == par.Rounds-1:
			SboxCube(mod, state)
		}
	}
	if !state[:tt].Equal(want) {
		t.Fatal("materialized permutation differs from streaming permutation")
	}
}

func TestKeyValidation(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	if _, err := NewCipher(par, make(Key, 3)); err == nil {
		t.Fatal("short key accepted")
	}
	bad := KeyFromSeed(par, "x")
	bad[0] = par.Mod.P() // out of range
	if _, err := NewCipher(par, bad); err == nil {
		t.Fatal("out-of-range key accepted")
	}
}

func TestMessageValidation(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "k"))
	if _, err := c.EncryptBlock(0, 0, ff.NewVec(par.T+1)); err == nil {
		t.Fatal("oversized block accepted")
	}
	if _, err := c.EncryptBlock(0, 0, ff.Vec{par.Mod.P()}); err == nil {
		t.Fatal("out-of-range message element accepted")
	}
	if _, err := c.DecryptBlock(0, 0, ff.Vec{par.Mod.P()}); err == nil {
		t.Fatal("out-of-range ciphertext element accepted")
	}
}

func TestToyParamsValidation(t *testing.T) {
	if _, err := ToyParams(1, 1, ff.P17); err == nil {
		t.Fatal("t=1 accepted")
	}
	if _, err := ToyParams(4, 0, ff.P17); err == nil {
		t.Fatal("rounds=0 accepted")
	}
	if _, err := NewParams(Toy, ff.P17); err == nil {
		t.Fatal("NewParams(Toy) should be rejected")
	}
}

func TestNewRandomKey(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	k, err := NewRandomKey(par)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(par); err != nil {
		t.Fatal(err)
	}
	k2, _ := NewRandomKey(par)
	if ff.Vec(k).Equal(ff.Vec(k2)) {
		t.Fatal("two random keys identical")
	}
}

// Property: encrypt/decrypt roundtrip for arbitrary short messages on a
// toy instance.
func TestRoundTripQuick(t *testing.T) {
	par, _ := ToyParams(4, 2, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "quick"))
	f := func(raw []uint64, nonce uint64) bool {
		msg := make(ff.Vec, len(raw))
		for i, v := range raw {
			msg[i] = v % par.Mod.P()
		}
		ct, err := c.Encrypt(nonce, msg)
		if err != nil {
			return false
		}
		back, err := c.Decrypt(nonce, ct)
		if err != nil {
			return false
		}
		return back.Equal(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNumBlocks sanity.
func TestNumBlocks(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "k"))
	for _, tc := range []struct{ n, want int }{{0, 0}, {1, 1}, {32, 1}, {33, 2}, {64, 2}, {65, 3}} {
		if got := c.NumBlocks(tc.n); got != tc.want {
			t.Errorf("NumBlocks(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func BenchmarkKeyStreamPasta3(b *testing.B) { benchKeyStream(b, Pasta3) }
func BenchmarkKeyStreamPasta4(b *testing.B) { benchKeyStream(b, Pasta4) }

func benchKeyStream(b *testing.B, v Variant) {
	par := MustParams(v, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "bench"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.KeyStream(uint64(i), 0)
	}
}

// TestTruncationRationale demonstrates why the Trunc layer matters
// (Sec. II-B: "truncates the output to prevent round inversion"): given
// the FULL 2t-element final state, an attacker can invert the final
// affine layer — all its inputs (matrices, constants) are public — and
// peel the permutation backwards. Truncation to t elements removes half
// the information and blocks this.
func TestTruncationRationale(t *testing.T) {
	par := MustParams(Pasta4, ff.P33)
	c, _ := NewCipher(par, KeyFromSeed(par, "trunc"))
	nonce, block := uint64(13), uint64(0)

	// Full (untruncated) final state, as Permute exposes for the HW model.
	s := xof.NewSampler(par.Mod, nonce, block)
	full := c.Permute(s)

	// Adversary: rebuild the public schedule and invert the final affine
	// layer: state = Mix(M·X + RC)  ⇒  X = M⁻¹·(Mix⁻¹(state) − RC).
	layers := DeriveSchedule(par, nonce, block)
	last := layers[len(layers)-1]
	mod := par.Mod
	tt := par.T

	state := full.Clone()
	// Invert Mix: (2 1; 1 2)⁻¹ = 3⁻¹(2 -1; -1 2).
	inv3 := mod.Inv(3)
	l, r := state[:tt], state[tt:]
	preMix := ff.NewVec(2 * tt)
	for i := 0; i < tt; i++ {
		preMix[i] = mod.Mul(inv3, mod.Sub(mod.Mul(2, l[i]), r[i]))
		preMix[tt+i] = mod.Mul(inv3, mod.Sub(mod.Mul(2, r[i]), l[i]))
	}
	// Subtract round constants and apply the matrix inverses.
	ff.SubVec(mod, preMix[:tt], preMix[:tt], last.RCL)
	ff.SubVec(mod, preMix[tt:], preMix[tt:], last.RCR)
	mlInv, ok := ExpandMatrix(mod, last.MatSeedL).Inverse(mod)
	if !ok {
		t.Fatal("final matrix not invertible?")
	}
	mrInv, ok := ExpandMatrix(mod, last.MatSeedR).Inverse(mod)
	if !ok {
		t.Fatal("final matrix not invertible?")
	}
	recovered := ff.NewVec(2 * tt)
	mlInv.MulVec(mod, recovered[:tt], preMix[:tt])
	mrInv.MulVec(mod, recovered[tt:], preMix[tt:])

	// Check: the recovered state equals the state after the cube S-box —
	// i.e. the final affine layer IS invertible from the full state. The
	// cipher therefore must not expose it; KeyStream returns only t
	// elements.
	wantKS := c.KeyStream(nonce, block)
	if len(wantKS) != tt {
		t.Fatalf("keystream exposes %d elements, want %d (truncated)", len(wantKS), tt)
	}
	if !wantKS.Equal(full[:tt]) {
		t.Fatal("keystream is not the truncation of the final state")
	}
	// The inversion consumed all 2t outputs; verify it actually produced
	// the pre-final-layer state by re-applying the layer.
	reapplied := recovered.Clone()
	ApplyAffine(mod, reapplied[:tt], last.MatSeedL, last.RCL)
	ApplyAffine(mod, reapplied[tt:], last.MatSeedR, last.RCR)
	Mix(mod, reapplied)
	if !reapplied.Equal(full) {
		t.Fatal("final-layer inversion failed — it should succeed given the full state")
	}
}
