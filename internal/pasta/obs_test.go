package pasta

import (
	"testing"

	"repro/internal/ff"
	"repro/internal/obs"
)

// TestKeyStreamBlocksNonPositiveCount: a negative (or zero) block count
// must yield an empty vector, not a makeslice panic (regression for the
// unguarded ff.NewVec(count*t)).
func TestKeyStreamBlocksNonPositiveCount(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "neg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, count := range []int{-1, -1000, 0} {
		out := c.KeyStreamBlocks(7, 0, count)
		if len(out) != 0 {
			t.Fatalf("KeyStreamBlocks(count=%d) returned %d elements, want 0", count, len(out))
		}
	}
	// Positive counts still work and are unaffected by the guard.
	if out := c.KeyStreamBlocks(7, 0, 2); len(out) != 2*par.T {
		t.Fatalf("KeyStreamBlocks(2) returned %d elements, want %d", len(out), 2*par.T)
	}
}

// TestEngineMetricsNonzero: after a bulk run the engine's observability
// counters reflect the work done — blocks processed, fan-out width, pool
// traffic, and a populated latency histogram.
func TestEngineMetricsNonzero(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "metrics"))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	blocksBefore := reg.Counter("pasta.blocks").Value()
	histBefore := reg.Histogram("pasta.block_ns").Count()

	msg := ff.NewVec(8 * par.T)
	if _, err := c.WithParallelism(2).Encrypt(3, msg); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("pasta.blocks").Value() - blocksBefore; got != 8 {
		t.Fatalf("pasta.blocks advanced by %d, want 8", got)
	}
	if got := reg.Gauge("pasta.workers").Value(); got != 2 {
		t.Fatalf("pasta.workers = %d, want 2", got)
	}
	if got := reg.Histogram("pasta.block_ns").Count() - histBefore; got != 8 {
		t.Fatalf("pasta.block_ns observed %d blocks, want 8", got)
	}
	hits := reg.Counter("pasta.workspace_pool_hits").Value()
	misses := reg.Counter("pasta.workspace_pool_miss").Value()
	if hits+misses == 0 {
		t.Fatal("workspace pool saw no traffic")
	}
}

// TestKeyStreamIntoAllocFreeInstrumented: the acceptance criterion of the
// observability layer — the steady-state keystream path must stay at
// 0 allocs/op with instrumentation enabled. Tolerance 0.5: a concurrent
// GC may clear the sync.Pool between runs.
func TestKeyStreamIntoAllocFreeInstrumented(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates")
	}
	par := MustParams(Pasta4, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "allocs"))
	if err != nil {
		t.Fatal(err)
	}
	ks := ff.NewVec(par.T)
	if err := c.KeyStreamInto(ks, 1, 0); err != nil { // warm the workspace pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := c.KeyStreamInto(ks, 1, 1); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("instrumented KeyStreamInto allocates %.1f objects/op, want 0", avg)
	}
}
