package pasta

import (
	"strings"
	"testing"

	"repro/internal/ff"
)

// Regression tests for the public-API panic conversions: entry points a
// caller can reach with bad input must report errors, not crash. The
// Must* variants keep the panicking behaviour for tests and init-time
// configuration.

func TestKeyStreamIntoLengthMismatchReturnsError(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "errs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, par.T - 1, par.T + 1, 3 * par.T} {
		err := c.KeyStreamInto(ff.NewVec(n), 1, 0)
		if n == par.T {
			t.Fatalf("test bug: %d is the valid length", n)
		}
		if err == nil {
			t.Fatalf("KeyStreamInto accepted a %d-element dst (want %d)", n, par.T)
		}
		if !strings.Contains(err.Error(), "elements") {
			t.Fatalf("unhelpful error: %v", err)
		}
	}
	// The valid length still works and reports no error.
	if err := c.KeyStreamInto(ff.NewVec(par.T), 1, 0); err != nil {
		t.Fatal(err)
	}
}

func TestNewParamsRejectsBadVariant(t *testing.T) {
	if _, err := NewParams(Toy, ff.P17); err == nil {
		t.Fatal("NewParams accepted the Toy variant (ToyParams is the entry point)")
	}
	if _, err := NewParams(Variant(99), ff.P17); err == nil {
		t.Fatal("NewParams accepted an unknown variant")
	}
}

func TestMustParamsStillPanicsForTests(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParams did not panic on a bad variant")
		}
	}()
	MustParams(Variant(99), ff.P17)
}
