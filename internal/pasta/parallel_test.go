package pasta

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ff"
)

// TestParallelMatchesSequentialGolden: the parallel Encrypt/Decrypt fan-out
// must be bit-identical to the sequential oracle for PASTA-3 and PASTA-4
// across every supported prime, including message lengths that are not a
// multiple of the block size t (partial final block) and shorter than t.
func TestParallelMatchesSequentialGolden(t *testing.T) {
	for _, v := range []Variant{Pasta3, Pasta4} {
		for width, mod := range ff.StandardModuli {
			v, mod, width := v, mod, width
			t.Run(fmt.Sprintf("%v-w%d", v, width), func(t *testing.T) {
				t.Parallel()
				par := MustParams(v, mod)
				c, err := NewCipher(par, KeyFromSeed(par, "equiv"))
				if err != nil {
					t.Fatal(err)
				}
				par4 := c.WithParallelism(4)
				rng := rand.New(rand.NewSource(int64(width)))
				for _, n := range []int{0, 1, par.T - 1, par.T, par.T + 1, 3*par.T + 5} {
					msg := ff.NewVec(n)
					for i := range msg {
						msg[i] = rng.Uint64() % mod.P()
					}
					wantCT, err := c.EncryptSequential(77, msg)
					if err != nil {
						t.Fatal(err)
					}
					gotCT, err := par4.Encrypt(77, msg)
					if err != nil {
						t.Fatal(err)
					}
					if !gotCT.Equal(wantCT) {
						t.Fatalf("n=%d: parallel Encrypt differs from sequential oracle", n)
					}
					wantPT, err := c.DecryptSequential(77, wantCT)
					if err != nil {
						t.Fatal(err)
					}
					gotPT, err := par4.Decrypt(77, gotCT)
					if err != nil {
						t.Fatal(err)
					}
					if !gotPT.Equal(wantPT) || !gotPT.Equal(msg) {
						t.Fatalf("n=%d: parallel Decrypt differs from sequential oracle", n)
					}
				}
			})
		}
	}
}

// TestParallelismKnob: every worker count gives the same ciphertext, and
// the knob is reported back.
func TestParallelismKnob(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "knob"))
	msg := ff.NewVec(10*par.T + 3)
	for i := range msg {
		msg[i] = uint64(i*7) % par.Mod.P()
	}
	want, err := c.EncryptSequential(3, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		cw := c.WithParallelism(workers)
		if cw.Parallelism() != workers {
			t.Fatalf("Parallelism() = %d, want %d", cw.Parallelism(), workers)
		}
		got, err := cw.Encrypt(3, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("workers=%d: ciphertext differs", workers)
		}
	}
}

// TestParallelRangeValidation: out-of-range elements are rejected on the
// parallel path just as on the sequential one.
func TestParallelRangeValidation(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "val"))
	msg := ff.NewVec(4 * par.T)
	msg[3*par.T+1] = par.Mod.P() // out of range, in a late block
	if _, err := c.WithParallelism(4).Encrypt(0, msg); err == nil {
		t.Fatal("parallel Encrypt accepted out-of-range element")
	}
	if _, err := c.EncryptSequential(0, msg); err == nil {
		t.Fatal("sequential Encrypt accepted out-of-range element")
	}
}

// TestKeyStreamBlocks: the parallel block precomputation matches per-block
// KeyStream calls, for aligned and unaligned first counters.
func TestKeyStreamBlocks(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "blocks"))
	for _, first := range []uint64{0, 5} {
		const count = 7
		got := c.KeyStreamBlocks(11, first, count)
		if len(got) != count*par.T {
			t.Fatalf("KeyStreamBlocks returned %d elements, want %d", len(got), count*par.T)
		}
		for b := 0; b < count; b++ {
			want := c.KeyStream(11, first+uint64(b))
			if !got[b*par.T : (b+1)*par.T].Equal(want) {
				t.Fatalf("first=%d block %d differs from KeyStream", first, b)
			}
		}
	}
	if got := c.KeyStreamBlocks(11, 0, 0); len(got) != 0 {
		t.Fatalf("zero-count precompute returned %d elements", len(got))
	}
}

// TestStreamMatchesBulk: processing a message through the Stream API in
// arbitrary chunk sizes equals the bulk (block-at-a-time) Encrypt, and the
// decrypt stream inverts it.
func TestStreamMatchesBulk(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "stream"))
	msg := ff.NewVec(5*par.T + 9)
	for i := range msg {
		msg[i] = uint64(i*13) % par.Mod.P()
	}
	want, err := c.Encrypt(21, msg)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunks := range [][]int{
		{len(msg)},
		{1, 2, 3, 5, 7, 11, 13, len(msg)}, // ragged, cut short by the loop
		{par.T, par.T, len(msg)},
	} {
		s := c.EncryptStream(21)
		got := ff.NewVec(len(msg))
		off := 0
		for _, n := range chunks {
			if off+n > len(msg) {
				n = len(msg) - off
			}
			if err := s.Process(got[off:off+n], msg[off:off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
			if off == len(msg) {
				break
			}
		}
		if off != len(msg) {
			if err := s.Process(got[off:], msg[off:]); err != nil {
				t.Fatal(err)
			}
		}
		if !got.Equal(want) {
			t.Fatalf("chunks %v: stream output differs from bulk Encrypt", chunks)
		}
		if p := s.Position(); p != uint64(len(msg)) {
			t.Fatalf("chunks %v: Position() = %d, want %d", chunks, p, len(msg))
		}
		d := c.DecryptStream(21)
		back := ff.NewVec(len(msg))
		if err := d.Process(back, got); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(msg) {
			t.Fatal("decrypt stream did not invert encrypt stream")
		}
	}
	// In-place (dst aliases src) and validation.
	s := c.EncryptStream(21)
	buf := msg.Clone()
	if err := s.Process(buf, buf); err != nil {
		t.Fatal(err)
	}
	if !buf.Equal(want) {
		t.Fatal("in-place stream output differs")
	}
	if err := c.EncryptStream(0).Process(ff.NewVec(1), ff.Vec{par.Mod.P()}); err == nil {
		t.Fatal("stream accepted out-of-range element")
	}
	if err := c.EncryptStream(0).Process(ff.NewVec(0), ff.NewVec(1)); err == nil {
		t.Fatal("stream accepted short dst")
	}
}

// BenchmarkKeyStreamInto measures the steady-state permutation with
// pooled scratch; the point of the allocation-free engine is the 0
// allocs/op this reports.
func BenchmarkKeyStreamIntoPasta3(b *testing.B) { benchKeyStreamInto(b, Pasta3) }
func BenchmarkKeyStreamIntoPasta4(b *testing.B) { benchKeyStreamInto(b, Pasta4) }

func benchKeyStreamInto(b *testing.B, v Variant) {
	par := MustParams(v, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "bench"))
	ks := ff.NewVec(par.T)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.KeyStreamInto(ks, uint64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(par.T)*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkEncryptParallel exercises the worker-pool fan-out over a
// 64-block message; -cpu 1,2,4 shows the multi-core scaling.
func BenchmarkEncryptParallel(b *testing.B) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "bench"))
	msg := ff.NewVec(64 * par.T)
	for i := range msg {
		msg[i] = uint64(i) % par.Mod.P()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encrypt(uint64(i), msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(msg))*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}

// BenchmarkEncryptSequentialOracle is the single-threaded baseline for
// BenchmarkEncryptParallel.
func BenchmarkEncryptSequentialOracle(b *testing.B) {
	par := MustParams(Pasta4, ff.P17)
	c, _ := NewCipher(par, KeyFromSeed(par, "bench"))
	msg := ff.NewVec(64 * par.T)
	for i := range msg {
		msg[i] = uint64(i) % par.Mod.P()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncryptSequential(uint64(i), msg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(msg))*float64(b.N)/b.Elapsed().Seconds(), "elems/s")
}
