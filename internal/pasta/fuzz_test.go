package pasta

import (
	"testing"

	"repro/internal/ff"
)

// FuzzEncryptDecrypt: decryption must invert encryption for arbitrary
// message bytes, nonces, and block alignment.
func FuzzEncryptDecrypt(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint64(7))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{255, 255, 255, 255, 255, 0, 0, 9}, uint64(1<<60))

	par, err := ToyParams(4, 2, ff.P17)
	if err != nil {
		f.Fatal(err)
	}
	c, err := NewCipher(par, KeyFromSeed(par, "fuzz"))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte, nonce uint64) {
		msg := make(ff.Vec, len(data))
		for i, b := range data {
			msg[i] = uint64(b) * 257 % par.Mod.P()
		}
		ct, err := c.Encrypt(nonce, msg)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.Decrypt(nonce, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(msg) {
			t.Fatalf("roundtrip failed for %d elements, nonce %d", len(msg), nonce)
		}
	})
}

// FuzzMatrixInvertible: every matrix the sequential construction builds
// from fuzzer-chosen (nonzero-lead) seeds must be invertible.
func FuzzMatrixInvertible(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), uint64(4))
	f.Add(uint64(65536), uint64(0), uint64(0), uint64(0))
	mod := ff.P17
	f.Fuzz(func(t *testing.T, a, b, c, d uint64) {
		seed := ff.Vec{a % mod.P(), b % mod.P(), c % mod.P(), d % mod.P()}
		if seed[0] == 0 {
			seed[0] = 1
		}
		if !ExpandMatrix(mod, seed).IsInvertible(mod) {
			t.Fatalf("singular matrix from seed %v", seed)
		}
	})
}
