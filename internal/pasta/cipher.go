package pasta

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/ff"
	"repro/internal/xof"
)

// Key is the PASTA secret key: 2t uniformly random field elements that
// initialize the permutation state.
type Key ff.Vec

// NewRandomKey samples a fresh key for params from crypto/rand.
func NewRandomKey(p Params) (Key, error) {
	k := make(Key, p.StateSize())
	var buf [8]byte
	for i := range k {
		for {
			if _, err := rand.Read(buf[:]); err != nil {
				return nil, fmt.Errorf("pasta: sampling key: %w", err)
			}
			v := binary.LittleEndian.Uint64(buf[:]) & p.Mod.Mask()
			if v < p.Mod.P() {
				k[i] = v
				break
			}
		}
	}
	return k, nil
}

// KeyFromSeed derives a deterministic key from a seed string via
// SHAKE128; intended for tests and reproducible examples, not production.
func KeyFromSeed(p Params, seed string) Key {
	s := xof.NewSamplerBytes(p.Mod, []byte("pasta-key:"+seed))
	return Key(s.Vector(p.StateSize(), false))
}

// Validate checks the key length and element ranges against params.
func (k Key) Validate(p Params) error {
	if len(k) != p.StateSize() {
		return fmt.Errorf("pasta: key has %d elements, want %d", len(k), p.StateSize())
	}
	for i, v := range k {
		if v >= p.Mod.P() {
			return fmt.Errorf("pasta: key element %d = %d out of range for %v", i, v, p.Mod)
		}
	}
	return nil
}

// Cipher is a PASTA instance bound to a key. It is safe for concurrent
// use: params and key are read-only after construction and all scratch
// lives in a sync.Pool, so any number of goroutines may call KeyStream,
// Encrypt, Decrypt, … on one shared *Cipher (proven by the -race tests).
// Stream values obtained from EncryptStream/DecryptStream are the one
// exception: each Stream is single-goroutine.
//
// Bulk Encrypt/Decrypt exploit the CTR-style independence of keystream
// blocks by fanning them out over worker goroutines; see WithParallelism
// for the knob (default: runtime.GOMAXPROCS).
type Cipher struct {
	par     Params
	key     Key
	workers int       // bulk-path worker count; ≤ 0 means GOMAXPROCS
	pool    sync.Pool // *workspace; New left nil, see getWorkspace
}

// NewCipher builds a cipher after validating params and key.
func NewCipher(par Params, key Key) (*Cipher, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if err := key.Validate(par); err != nil {
		return nil, err
	}
	return &Cipher{par: par, key: Key(ff.Vec(key).Clone())}, nil
}

// Params returns the cipher's parameters.
func (c *Cipher) Params() Params { return c.par }

// Key returns a copy of the secret key (needed by the HHE client to
// transport it homomorphically).
func (c *Cipher) Key() Key { return Key(ff.Vec(c.key).Clone()) }

// KeyStream computes the keystream block KS = Trunc(π(K, nonce, block)):
// t field elements. Allocation-sensitive callers should prefer
// KeyStreamInto, which writes into a caller-provided buffer.
func (c *Cipher) KeyStream(nonce, block uint64) ff.Vec {
	ks := ff.NewVec(c.par.T)
	c.keyStreamInto(ks, nonce, block)
	return ks
}

// EncryptBlock encrypts up to t field elements with the keystream of the
// given block index: ct[i] = msg[i] + KS[i] (mod p).
func (c *Cipher) EncryptBlock(nonce, block uint64, msg ff.Vec) (ff.Vec, error) {
	if len(msg) > c.par.T {
		return nil, fmt.Errorf("pasta: block has %d elements, max %d", len(msg), c.par.T)
	}
	ks := c.KeyStream(nonce, block)
	ct := ff.NewVec(len(msg))
	for i := range msg {
		if msg[i] >= c.par.Mod.P() {
			return nil, fmt.Errorf("pasta: message element %d = %d out of range", i, msg[i])
		}
		ct[i] = c.par.Mod.Add(msg[i], ks[i])
	}
	return ct, nil
}

// DecryptBlock inverts EncryptBlock.
func (c *Cipher) DecryptBlock(nonce, block uint64, ct ff.Vec) (ff.Vec, error) {
	if len(ct) > c.par.T {
		return nil, fmt.Errorf("pasta: block has %d elements, max %d", len(ct), c.par.T)
	}
	ks := c.KeyStream(nonce, block)
	msg := ff.NewVec(len(ct))
	for i := range ct {
		if ct[i] >= c.par.Mod.P() {
			return nil, fmt.Errorf("pasta: ciphertext element %d = %d out of range", i, ct[i])
		}
		msg[i] = c.par.Mod.Sub(ct[i], ks[i])
	}
	return msg, nil
}

// Encrypt encrypts an arbitrary-length message, consuming one keystream
// block of t elements per chunk, with block counters 0, 1, 2, … Blocks
// are computed in parallel (see WithParallelism); the output is
// bit-identical to EncryptSequential.
func (c *Cipher) Encrypt(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	return c.stream(nonce, msg, true)
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(nonce uint64, ct ff.Vec) (ff.Vec, error) {
	return c.stream(nonce, ct, false)
}

// EncryptSequential is the single-threaded reference oracle: one block at
// a time, counters ascending. The parallel Encrypt is property-tested to
// be bit-identical to it.
func (c *Cipher) EncryptSequential(nonce uint64, msg ff.Vec) (ff.Vec, error) {
	return c.streamSequential(nonce, msg, true)
}

// DecryptSequential is the single-threaded reference oracle for Decrypt.
func (c *Cipher) DecryptSequential(nonce uint64, ct ff.Vec) (ff.Vec, error) {
	return c.streamSequential(nonce, ct, false)
}

func (c *Cipher) stream(nonce uint64, in ff.Vec, encrypt bool) (ff.Vec, error) {
	out := ff.NewVec(len(in))
	if err := c.fanOut(nonce, in, out, c.NumBlocks(len(in)), encrypt); err != nil {
		return nil, err
	}
	return out, nil
}

func (c *Cipher) streamSequential(nonce uint64, in ff.Vec, encrypt bool) (ff.Vec, error) {
	out := ff.NewVec(len(in))
	if err := c.runBlocks(nonce, in, out, 0, 1, c.NumBlocks(len(in)), encrypt); err != nil {
		return nil, err
	}
	return out, nil
}

// NumBlocks returns the number of keystream blocks needed for n elements.
func (c *Cipher) NumBlocks(n int) int { return (n + c.par.T - 1) / c.par.T }

// Permute runs the full PASTA permutation π on the key state, drawing
// public randomness from s, and returns the final 2t-element state
// *before* truncation. The keystream is the first t elements.
//
// Exposed (rather than private) because the cycle-accurate hardware model
// and the homomorphic decryption circuit must replay the identical
// schedule of XOF consumption.
func (c *Cipher) Permute(s *xof.Sampler) ff.Vec {
	ws := c.getWorkspace()
	c.permuteInto(s, ws)
	state := ws.state.Clone()
	c.putWorkspace(ws)
	return state
}

// AffineLayer holds the four public pseudo-random vectors of one affine
// layer, in the exact XOF consumption order of the hardware schedule
// (Fig. 3): matrix seed for X_L, matrix seed for X_R, round constant for
// X_L, round constant for X_R.
type AffineLayer struct {
	MatSeedL ff.Vec // V0: first row of M_L (leading element nonzero)
	MatSeedR ff.Vec // V1: first row of M_R (leading element nonzero)
	RCL      ff.Vec // V2: round constants added to X_L
	RCR      ff.Vec // V3: round constants added to X_R
}

// DeriveAffineLayer draws the four vectors of the next affine layer from
// the sampler.
func DeriveAffineLayer(p Params, s *xof.Sampler) AffineLayer {
	return AffineLayer{
		MatSeedL: s.Vector(p.T, true),
		MatSeedR: s.Vector(p.T, true),
		RCL:      s.Vector(p.T, false),
		RCR:      s.Vector(p.T, false),
	}
}

// DeriveSchedule materializes all affine layers of one block's
// permutation — the full public data for (nonce, block).
func DeriveSchedule(p Params, nonce, block uint64) []AffineLayer {
	s := xof.NewSampler(p.Mod, nonce, block)
	layers := make([]AffineLayer, p.AffineLayers())
	for i := range layers {
		layers[i] = DeriveAffineLayer(p, s)
	}
	return layers
}

// ApplyAffine computes half ← M(seed)·half + rc in place, expanding the
// invertible matrix row by row exactly as the hardware does: only the
// seed row and the previous row are ever stored (the memory-efficiency
// point of Sec. III-C). Convenience wrapper around ApplyAffineInto that
// allocates its own scratch; hot paths use the Into variant.
func ApplyAffine(m ff.Modulus, half, seed, rc ff.Vec) {
	ApplyAffineInto(m, half, seed, rc, NewAffineScratch(len(half)))
}

// NextMatrixRow advances the sequential invertible-matrix recurrence of
// eq. (1): given the seed row α and the current row r, the next row is
//
//	next[0] = r[t-1]·α[0]
//	next[j] = r[j-1] + r[t-1]·α[j]   (j ≥ 1)
//
// i.e. one multiply-accumulate per output element — the operation of the
// hardware MatGen MAC unit. Allocating wrapper around NextMatrixRowInto.
func NextMatrixRow(m ff.Modulus, seed, row ff.Vec) ff.Vec {
	next := ff.NewVec(len(row))
	NextMatrixRowInto(m, seed, row, next)
	return next
}

// ExpandMatrix materializes the full t×t invertible matrix from a seed
// row. Used by tests, the homomorphic evaluator, and invertibility
// property checks; the cipher itself streams rows via NextMatrixRow.
func ExpandMatrix(m ff.Modulus, seed ff.Vec) *ff.Matrix {
	t := len(seed)
	mat := ff.NewMatrix(t)
	copy(mat.Row(0), seed)
	for i := 1; i < t; i++ {
		copy(mat.Row(i), NextMatrixRow(m, seed, mat.Row(i-1)))
	}
	return mat
}

// Mix replaces the state halves (L, R) by (2L + R, L + 2R) in place —
// computed, as in the hardware, with three vector additions:
// s = L + R, L' = L + s, R' = R + s.
func Mix(m ff.Modulus, state ff.Vec) {
	t := len(state) / 2
	l, r := state[:t], state[t:]
	for i := 0; i < t; i++ {
		s := m.Add(l[i], r[i])
		l[i] = m.Add(l[i], s)
		r[i] = m.Add(r[i], s)
	}
}

// SboxFeistel applies the Feistel S-box S′ to the full 2t state in place:
// x[j] ← x[j] + x[j-1]² for j ≥ 1 (x[0] unchanged), processed from the
// top index downward so each square uses the pre-update neighbour.
func SboxFeistel(m ff.Modulus, state ff.Vec) {
	for j := len(state) - 1; j >= 1; j-- {
		state[j] = m.Add(state[j], m.Sqr(state[j-1]))
	}
}

// SboxCube applies the cube S-box x ← x³ elementwise in place.
func SboxCube(m ff.Modulus, state ff.Vec) {
	for j := range state {
		state[j] = m.Cube(state[j])
	}
}
