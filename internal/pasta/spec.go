package pasta

import (
	"fmt"

	"repro/internal/cipher"
	"repro/internal/ff"
)

// CipherName is the registry and wire name of the PASTA family.
const CipherName = "pasta"

// spec implements cipher.Spec for PASTA. Registered from init, so any
// import of this package makes "pasta" available to the registry.
type spec struct{}

func init() { cipher.Register(spec{}) }

func (spec) Name() string { return CipherName }

// Resolve maps wire-level params onto a PASTA instance. T != 0 selects
// a toy/reduced instance (Rounds defaulting to 1); otherwise Variant
// uses the family's public numbering: 0 (default) and 3 mean PASTA-3,
// 4 means PASTA-4.
func (spec) Resolve(p cipher.Params) (cipher.Instance, error) {
	mod, err := p.Modulus()
	if err != nil {
		return cipher.Instance{}, err
	}
	// The variant is validated even for toy instances (which only use it
	// as a family hint), so a typo'd variant never silently resolves.
	switch p.Variant {
	case 0, 3, 4:
	default:
		return cipher.Instance{}, fmt.Errorf("pasta: unknown variant %d (want 3 or 4)", p.Variant)
	}
	var par Params
	if p.T != 0 {
		rounds := p.Rounds
		if rounds == 0 {
			rounds = 1
		}
		par, err = ToyParams(p.T, rounds, mod)
	} else {
		v := Pasta3
		if p.Variant == 4 {
			v = Pasta4
		}
		par, err = NewParams(v, mod)
		if err == nil && p.Rounds != 0 && p.Rounds != par.Rounds {
			err = fmt.Errorf("pasta: %v has %d rounds, cannot override to %d", par.Variant, par.Rounds, p.Rounds)
		}
	}
	if err != nil {
		return cipher.Instance{}, err
	}
	if err := par.Validate(); err != nil {
		return cipher.Instance{}, err
	}
	return cipher.Instance{
		Spec:   spec{},
		Block:  par.T,
		KeyLen: par.StateSize(),
		Mod:    mod,
		Params: par,
		Label:  par.String(),
	}, nil
}

func (spec) NewRandomKey(inst cipher.Instance) (ff.Vec, error) {
	return cipher.RandomKey(CipherName, inst.Mod, inst.KeyLen)
}

// KeyFromSeed matches the historical pasta.KeyFromSeed derivation
// ("pasta-key:"+seed) so seed-keyed golden vectors are stable.
func (spec) KeyFromSeed(inst cipher.Instance, seed string) ff.Vec {
	return cipher.SeededKey(CipherName, inst.Mod, inst.KeyLen, seed)
}

func (spec) ValidateKey(inst cipher.Instance, key ff.Vec) error {
	return cipher.CheckKey(CipherName, inst.Mod, inst.KeyLen, key)
}

func (spec) NewEngine(inst cipher.Instance, key ff.Vec) (cipher.BlockEngine, error) {
	return NewCipher(inst.Params.(Params), Key(key))
}

// ProbeSubstrate: PASTA runs on every substrate; the SoC's peripheral
// carries a 32-bit data bus, so wide moduli stay off it.
func (spec) ProbeSubstrate(substrate string, inst cipher.Instance) error {
	switch substrate {
	case cipher.SubstrateAccel:
		return nil
	case cipher.SubstrateSoC:
		if inst.Mod.Bits() > 32 {
			return fmt.Errorf("modulus %v exceeds the 32-bit peripheral bus", inst.Mod)
		}
		return nil
	default:
		return fmt.Errorf("unknown substrate %q", substrate)
	}
}
