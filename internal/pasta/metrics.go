package pasta

import (
	"time"

	"repro/internal/obs"
)

// Metric handles for the parallel keystream engine, resolved once from
// the default registry so the hot path touches only lock-free atomics.
// The steady-state keystream path stays 0 allocs/op with these enabled
// (asserted by TestKeyStreamIntoAllocFreeInstrumented).
//
//	pasta.blocks               keystream blocks computed (all entry points)
//	pasta.workers              worker fan-out width of the last bulk call
//	pasta.workspace_pool_hits  pooled workspaces reused
//	pasta.workspace_pool_miss  workspaces freshly allocated (pool empty)
//	pasta.block_ns             per-block permutation latency histogram (ns)
var (
	mBlocks     = obs.Default().Counter("pasta.blocks")
	mWorkers    = obs.Default().Gauge("pasta.workers")
	mPoolHits   = obs.Default().Counter("pasta.workspace_pool_hits")
	mPoolMisses = obs.Default().Counter("pasta.workspace_pool_miss")
	mBlockNs    = obs.Default().Histogram("pasta.block_ns")
)

// observeBlock records one computed keystream block and its latency.
func observeBlock(start time.Time) {
	mBlocks.Inc()
	mBlockNs.Observe(time.Since(start).Nanoseconds())
}
