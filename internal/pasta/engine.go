package pasta

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/ff"
	"repro/internal/xof"
)

// This file is the allocation-free, parallel keystream engine. Two
// structural facts of the scheme drive it:
//
//   - Inside one permutation, every affine layer is a matrix–vector
//     product whose rows the hardware streams through a multiplier bank
//     and adder tree, reducing the wide sum once per row (Sec. III-C).
//     ApplyAffineInto mirrors that with ff.DotLazy and caller-provided
//     scratch, so the steady-state permutation performs zero heap
//     allocations.
//
//   - Across blocks, the keystream is CTR-style: block b depends only on
//     (key, nonce, b). Blocks are embarrassingly parallel, so bulk
//     Encrypt/Decrypt fan blocks out over a worker pool, exactly the
//     parallelism a farm of accelerator instances would exploit.

// AffineScratch holds the three t-element buffers ApplyAffineInto needs:
// the output accumulator and the two ping-pong matrix-row registers (the
// hardware keeps only the seed row and the current row — the memory
// frugality of Sec. III-C).
type AffineScratch struct {
	Out  ff.Vec
	RowA ff.Vec
	RowB ff.Vec
}

// NewAffineScratch returns scratch for block size t.
func NewAffineScratch(t int) *AffineScratch {
	return &AffineScratch{Out: ff.NewVec(t), RowA: ff.NewVec(t), RowB: ff.NewVec(t)}
}

// NextMatrixRowInto advances the sequential invertible-matrix recurrence
// of eq. (1) into next, which must not alias row:
//
//	next[0] = row[t-1]·seed[0]
//	next[j] = row[j-1] + row[t-1]·seed[j]   (j ≥ 1)
func NextMatrixRowInto(m ff.Modulus, seed, row, next ff.Vec) {
	t := len(row)
	last := row[t-1]
	next[0] = m.Mul(last, seed[0])
	for j := 1; j < t; j++ {
		next[j] = m.MulAdd(last, seed[j], row[j-1])
	}
}

// ApplyAffineInto computes half ← M(seed)·half + rc in place using the
// caller's scratch and lazy-reduction dot products: each output element
// accumulates its row's 128-bit products wide and reduces once, the
// software image of the adder-tree-then-reduce hardware schedule.
func ApplyAffineInto(m ff.Modulus, half, seed, rc ff.Vec, sc *AffineScratch) {
	t := len(half)
	out, row, next := sc.Out[:t], sc.RowA[:t], sc.RowB[:t]
	copy(row, seed)
	out[0] = m.Add(ff.DotLazy(m, row, half), rc[0])
	for i := 1; i < t; i++ {
		NextMatrixRowInto(m, seed, row, next)
		row, next = next, row
		out[i] = m.Add(ff.DotLazy(m, row, half), rc[i])
	}
	copy(half, out)
}

// workspace bundles every buffer one keystream block needs — permutation
// state, the four affine-layer vectors (drawn in the hardware's XOF
// order), affine scratch, and a reusable sampler — so the steady state
// touches the heap zero times per block.
type workspace struct {
	state   ff.Vec // 2t permutation state
	seedL   ff.Vec // V0: matrix seed for X_L
	seedR   ff.Vec // V1: matrix seed for X_R
	rcL     ff.Vec // V2: round constants for X_L
	rcR     ff.Vec // V3: round constants for X_R
	sc      AffineScratch
	sampler *xof.Sampler
}

func newWorkspace(par Params) *workspace {
	t := par.T
	return &workspace{
		state:   ff.NewVec(2 * t),
		seedL:   ff.NewVec(t),
		seedR:   ff.NewVec(t),
		rcL:     ff.NewVec(t),
		rcR:     ff.NewVec(t),
		sc:      AffineScratch{Out: ff.NewVec(t), RowA: ff.NewVec(t), RowB: ff.NewVec(t)},
		sampler: xof.NewSampler(par.Mod, 0, 0),
	}
}

// getWorkspace fetches a pooled workspace (the pool's New field is left
// nil so derived ciphers from WithParallelism need no extra setup).
func (c *Cipher) getWorkspace() *workspace {
	ws, _ := c.pool.Get().(*workspace)
	if ws == nil {
		mPoolMisses.Inc()
		ws = newWorkspace(c.par)
	} else {
		mPoolHits.Inc()
	}
	return ws
}

func (c *Cipher) putWorkspace(ws *workspace) { c.pool.Put(ws) }

// permuteInto runs the full permutation π on ws.state, drawing public
// randomness from s, without allocating.
func (c *Cipher) permuteInto(s *xof.Sampler, ws *workspace) {
	copy(ws.state, c.key)
	mod := c.par.Mod
	t := c.par.T
	for layer := 0; layer < c.par.AffineLayers(); layer++ {
		s.VectorInto(ws.seedL, true)
		s.VectorInto(ws.seedR, true)
		s.VectorInto(ws.rcL, false)
		s.VectorInto(ws.rcR, false)
		ApplyAffineInto(mod, ws.state[:t], ws.seedL, ws.rcL, &ws.sc)
		ApplyAffineInto(mod, ws.state[t:], ws.seedR, ws.rcR, &ws.sc)
		Mix(mod, ws.state)
		switch {
		case layer < c.par.Rounds-1:
			SboxFeistel(mod, ws.state)
		case layer == c.par.Rounds-1:
			SboxCube(mod, ws.state)
		}
	}
}

// KeyStreamInto writes the keystream block KS(nonce, block) into dst,
// which must have exactly t elements; a length mismatch is reported as an
// error (regression: it used to panic, which crashed callers feeding
// user-sized buffers). The steady state allocates nothing: all scratch,
// including the SHAKE sampler, comes from the cipher's pool.
func (c *Cipher) KeyStreamInto(dst ff.Vec, nonce, block uint64) error {
	if len(dst) != c.par.T {
		return fmt.Errorf("pasta: KeyStreamInto dst has %d elements, want %d", len(dst), c.par.T)
	}
	c.keyStreamInto(dst, nonce, block)
	return nil
}

// keyStreamInto is KeyStreamInto without the length check, for internal
// callers that own a correctly sized buffer.
func (c *Cipher) keyStreamInto(dst ff.Vec, nonce, block uint64) {
	ws := c.getWorkspace()
	start := time.Now()
	ws.sampler.Reseed(nonce, block)
	c.permuteInto(ws.sampler, ws)
	observeBlock(start)
	copy(dst, ws.state[:c.par.T])
	c.putWorkspace(ws)
}

// WithParallelism returns a cipher sharing this cipher's key whose bulk
// Encrypt/Decrypt/KeyStreamBlocks fan keystream blocks out over n worker
// goroutines. n ≤ 0 selects runtime.GOMAXPROCS(0) (the default for
// ciphers from NewCipher); n = 1 forces the sequential path. The derived
// cipher is independently safe for concurrent use.
func (c *Cipher) WithParallelism(n int) *Cipher {
	return &Cipher{par: c.par, key: c.key, workers: n}
}

// Parallelism reports the configured worker count (0 = GOMAXPROCS).
func (c *Cipher) Parallelism() int { return c.workers }

func (c *Cipher) effectiveWorkers(blocks int) int {
	w := c.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runBlocks processes blocks start, start+stride, … < blocks of in into
// out (adding the keystream when encrypt, subtracting otherwise) with one
// pooled workspace for the whole strided walk.
func (c *Cipher) runBlocks(nonce uint64, in, out ff.Vec, start, stride, blocks int, encrypt bool) error {
	ws := c.getWorkspace()
	defer c.putWorkspace(ws)
	t := c.par.T
	mod := c.par.Mod
	p := mod.P()
	for b := start; b < blocks; b += stride {
		lo, hi := b*t, (b+1)*t
		if hi > len(in) {
			hi = len(in)
		}
		blockStart := time.Now()
		ws.sampler.Reseed(nonce, uint64(b))
		c.permuteInto(ws.sampler, ws)
		observeBlock(blockStart)
		ks := ws.state[:t]
		src, dst := in[lo:hi], out[lo:hi]
		for i := range src {
			if src[i] >= p {
				return fmt.Errorf("pasta: block %d: element %d = %d out of range for %v", b, i, src[i], mod)
			}
			if encrypt {
				dst[i] = mod.Add(src[i], ks[i])
			} else {
				dst[i] = mod.Sub(src[i], ks[i])
			}
		}
	}
	return nil
}

// fanOut splits blocks across the worker pool with a strided assignment
// (worker w owns blocks w, w+workers, …), so outputs land in disjoint
// slices and no synchronization beyond the final join is needed.
func (c *Cipher) fanOut(nonce uint64, in, out ff.Vec, blocks int, encrypt bool) error {
	workers := c.effectiveWorkers(blocks)
	mWorkers.Set(int64(workers))
	if workers <= 1 {
		return c.runBlocks(nonce, in, out, 0, 1, blocks, encrypt)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = c.runBlocks(nonce, in, out, w, workers, blocks, encrypt)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// KeyStreamBlocks computes count consecutive keystream blocks
// [first, first+count) in parallel and returns them concatenated
// (block first+i at offset i·t). This is the precomputation primitive:
// CTR-style independence lets a client mask keystream latency by
// generating blocks before the data to encrypt exists.
//
// A non-positive count yields an empty vector (regression: a negative
// count used to reach ff.NewVec and panic with makeslice).
func (c *Cipher) KeyStreamBlocks(nonce, first uint64, count int) ff.Vec {
	if count <= 0 {
		return ff.NewVec(0)
	}
	t := c.par.T
	out := ff.NewVec(count * t)
	workers := c.effectiveWorkers(count)
	mWorkers.Set(int64(workers))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := c.getWorkspace()
			defer c.putWorkspace(ws)
			for b := w; b < count; b += workers {
				blockStart := time.Now()
				ws.sampler.Reseed(nonce, first+uint64(b))
				c.permuteInto(ws.sampler, ws)
				observeBlock(blockStart)
				copy(out[b*t:(b+1)*t], ws.state[:t])
			}
		}(w)
	}
	wg.Wait()
	return out
}

// Stream is an incremental encryptor/decryptor: successive Process calls
// consume the keystream contiguously, so a message processed in arbitrary
// chunk sizes yields exactly the bulk Encrypt/Decrypt output. A Stream is
// NOT safe for concurrent use; derive one per goroutine from the (safe)
// shared Cipher.
type Stream struct {
	c       *Cipher
	nonce   uint64
	block   uint64
	encrypt bool
	ks      ff.Vec // keystream of the current block
	used    int    // elements of ks already consumed
}

// EncryptStream returns a streaming encryptor for the nonce, starting at
// block 0.
func (c *Cipher) EncryptStream(nonce uint64) *Stream {
	return &Stream{c: c, nonce: nonce, encrypt: true, ks: ff.NewVec(c.par.T), used: c.par.T}
}

// DecryptStream returns a streaming decryptor for the nonce.
func (c *Cipher) DecryptStream(nonce uint64) *Stream {
	return &Stream{c: c, nonce: nonce, encrypt: false, ks: ff.NewVec(c.par.T), used: c.par.T}
}

// Process transforms src into dst (dst may alias src; len(dst) must be at
// least len(src)) and advances the stream position by len(src) elements.
func (s *Stream) Process(dst, src ff.Vec) error {
	if len(dst) < len(src) {
		return fmt.Errorf("pasta: stream dst has %d elements, src %d", len(dst), len(src))
	}
	mod := s.c.par.Mod
	p := mod.P()
	for i := range src {
		if s.used == len(s.ks) {
			s.c.keyStreamInto(s.ks, s.nonce, s.block)
			s.block++
			s.used = 0
		}
		if src[i] >= p {
			return fmt.Errorf("pasta: stream element %d = %d out of range for %v", i, src[i], mod)
		}
		k := s.ks[s.used]
		s.used++
		if s.encrypt {
			dst[i] = mod.Add(src[i], k)
		} else {
			dst[i] = mod.Sub(src[i], k)
		}
	}
	return nil
}

// Position returns the number of elements processed so far.
func (s *Stream) Position() uint64 {
	if s.used == len(s.ks) && s.block == 0 {
		return 0
	}
	return (s.block-1)*uint64(len(s.ks)) + uint64(s.used)
}
