package pasta

import (
	"sync"
	"testing"

	"repro/internal/ff"
)

// TestCipherConcurrentUse hammers one shared *Cipher from many goroutines
// mixing every public entry point. The doc comment claims the cipher is
// safe for concurrent use; this test (run under -race in CI) proves it —
// the pooled workspaces must never be visible to two goroutines at once.
func TestCipherConcurrentUse(t *testing.T) {
	par := MustParams(Pasta4, ff.P17)
	c, err := NewCipher(par, KeyFromSeed(par, "race"))
	if err != nil {
		t.Fatal(err)
	}
	msg := ff.NewVec(3*par.T + 7)
	for i := range msg {
		msg[i] = uint64(i) % par.Mod.P()
	}
	wantKS := c.KeyStream(5, 0)
	wantCT, err := c.EncryptSequential(9, msg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const iters = 8
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ks := ff.NewVec(par.T)
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					if !c.KeyStream(5, 0).Equal(wantKS) {
						errc <- errKeystreamDrift
						return
					}
				case 1:
					if err := c.KeyStreamInto(ks, 5, 0); err != nil {
						errc <- err
						return
					}
					if !ks.Equal(wantKS) {
						errc <- errKeystreamDrift
						return
					}
				case 2:
					ct, err := c.Encrypt(9, msg)
					if err != nil {
						errc <- err
						return
					}
					if !ct.Equal(wantCT) {
						errc <- errKeystreamDrift
						return
					}
				case 3:
					s := c.EncryptStream(9)
					out := ff.NewVec(len(msg))
					if err := s.Process(out, msg); err != nil {
						errc <- err
						return
					}
					if !out.Equal(wantCT) {
						errc <- errKeystreamDrift
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

var errKeystreamDrift = &driftError{}

type driftError struct{}

func (*driftError) Error() string { return "concurrent result differs from single-threaded result" }
