package bfv

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/ff"
	"repro/internal/rlwe"
)

// Ciphertext serialization: a small header (degree, level, N) followed by
// each residue polynomial bit-packed at its prime's width. This is the
// wire format whose measured size drives the communication-expansion
// experiment (the 10,000–100,000× FHE overhead of the paper's Sec. I).

const ctMagic = 0x42465601 // "BFV",1

// MarshalBinary serializes the ciphertext.
func (ct *Ciphertext) MarshalBinary(c *Context) ([]byte, error) {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, ctMagic)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(ct.C)))
	out = binary.LittleEndian.AppendUint16(out, uint16(c.RQ.Level()))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.Params.N))
	for _, poly := range ct.C {
		if len(poly) != c.RQ.Level() {
			return nil, fmt.Errorf("bfv: ciphertext level mismatch")
		}
		for l, ring := range c.RQ.Rings {
			w := uint(bits.Len64(ring.Q - 1))
			packed, err := ff.PackBits(ff.Vec(poly[l]), w)
			if err != nil {
				return nil, err
			}
			out = append(out, packed...)
		}
	}
	return out, nil
}

// UnmarshalCiphertext parses a ciphertext serialized for this context.
func (c *Context) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("bfv: ciphertext blob too short")
	}
	if binary.LittleEndian.Uint32(data) != ctMagic {
		return nil, fmt.Errorf("bfv: bad ciphertext magic")
	}
	nPolys := int(binary.LittleEndian.Uint16(data[4:]))
	level := int(binary.LittleEndian.Uint16(data[6:]))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if level != c.RQ.Level() || n != c.Params.N {
		return nil, fmt.Errorf("bfv: ciphertext parameters (N=%d, L=%d) do not match context (N=%d, L=%d)",
			n, level, c.Params.N, c.RQ.Level())
	}
	if nPolys < 2 || nPolys > 8 {
		return nil, fmt.Errorf("bfv: implausible ciphertext degree %d", nPolys-1)
	}
	off := 12
	ct := &Ciphertext{}
	for p := 0; p < nPolys; p++ {
		poly := c.RQ.NewPoly()
		for l, ring := range c.RQ.Rings {
			w := uint(bits.Len64(ring.Q - 1))
			sz := ff.PackedSize(n, w)
			if off+sz > len(data) {
				return nil, fmt.Errorf("bfv: truncated ciphertext blob")
			}
			vals, err := ff.UnpackBits(data[off:off+sz], n, w)
			if err != nil {
				return nil, err
			}
			for i, v := range vals {
				if v >= ring.Q {
					return nil, fmt.Errorf("bfv: residue %d out of range for prime %d", v, ring.Q)
				}
				poly[l][i] = v
			}
			off += sz
		}
		ct.C = append(ct.C, poly)
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: %d trailing bytes in ciphertext blob", len(data)-off)
	}
	return ct, nil
}

// --- key material serialization ---------------------------------------------

const (
	pkMagic  = 0x42465602
	rlkMagic = 0x42465603
)

// marshalRNSPoly appends the bit-packed residues of p.
func (c *Context) marshalRNSPoly(out []byte, p rlwe.RNSPoly) ([]byte, error) {
	for l, ring := range c.RQ.Rings {
		w := uint(bits.Len64(ring.Q - 1))
		packed, err := ff.PackBits(ff.Vec(p[l]), w)
		if err != nil {
			return nil, err
		}
		out = append(out, packed...)
	}
	return out, nil
}

// unmarshalRNSPoly reads one RNS polynomial, returning the new offset.
func (c *Context) unmarshalRNSPoly(data []byte, off int) (rlwe.RNSPoly, int, error) {
	p := c.RQ.NewPoly()
	for l, ring := range c.RQ.Rings {
		w := uint(bits.Len64(ring.Q - 1))
		sz := ff.PackedSize(c.Params.N, w)
		if off+sz > len(data) {
			return nil, 0, fmt.Errorf("bfv: truncated polynomial")
		}
		vals, err := ff.UnpackBits(data[off:off+sz], c.Params.N, w)
		if err != nil {
			return nil, 0, err
		}
		for i, v := range vals {
			if v >= ring.Q {
				return nil, 0, fmt.Errorf("bfv: residue out of range")
			}
			p[l][i] = v
		}
		off += sz
	}
	return p, off, nil
}

// MarshalPublicKey serializes pk.
func (pk *PublicKey) MarshalBinary(c *Context) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, pkMagic)
	var err error
	for _, p := range []rlwe.RNSPoly{pk.P0, pk.P1} {
		if out, err = c.marshalRNSPoly(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnmarshalPublicKey parses a public key for this context.
func (c *Context) UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != pkMagic {
		return nil, fmt.Errorf("bfv: bad public-key blob")
	}
	off := 4
	p0, off, err := c.unmarshalRNSPoly(data, off)
	if err != nil {
		return nil, err
	}
	p1, off, err := c.unmarshalRNSPoly(data, off)
	if err != nil {
		return nil, err
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: trailing bytes in public-key blob")
	}
	return &PublicKey{P0: p0, P1: p1}, nil
}

// MarshalBinary serializes the relinearization key.
func (rlk *RelinKey) MarshalBinary(c *Context) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, rlkMagic)
	out = binary.LittleEndian.AppendUint16(out, uint16(rlk.base))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rlk.pairs)))
	var err error
	for _, pair := range rlk.pairs {
		for _, p := range pair {
			if out, err = c.marshalRNSPoly(out, p); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// UnmarshalRelinKey parses a relinearization key for this context.
func (c *Context) UnmarshalRelinKey(data []byte) (*RelinKey, error) {
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != rlkMagic {
		return nil, fmt.Errorf("bfv: bad relin-key blob")
	}
	base := uint(binary.LittleEndian.Uint16(data[4:]))
	digits := int(binary.LittleEndian.Uint16(data[6:]))
	if digits < 1 || digits > 64 {
		return nil, fmt.Errorf("bfv: implausible digit count %d", digits)
	}
	rlk := &RelinKey{base: base}
	off := 8
	for k := 0; k < digits; k++ {
		var pair [2]rlwe.RNSPoly
		var err error
		for j := 0; j < 2; j++ {
			pair[j], off, err = c.unmarshalRNSPoly(data, off)
			if err != nil {
				return nil, err
			}
		}
		rlk.pairs = append(rlk.pairs, pair)
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: trailing bytes in relin-key blob")
	}
	return rlk, nil
}

// CiphertextBytes returns the wire size of a degree-1 ciphertext under
// these parameters without materializing one.
func (c *Context) CiphertextBytes() int {
	sz := 12
	for _, ring := range c.RQ.Rings {
		w := uint(bits.Len64(ring.Q - 1))
		sz += 2 * ff.PackedSize(c.Params.N, w)
	}
	return sz
}
