package bfv

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"slices"

	"repro/internal/ff"
	"repro/internal/rlwe"
)

// Ciphertext serialization: a small header (degree, level, N) followed by
// each residue polynomial bit-packed at its prime's width. This is the
// wire format whose measured size drives the communication-expansion
// experiment (the 10,000–100,000× FHE overhead of the paper's Sec. I).

const ctMagic = 0x42465601 // "BFV",1

// MarshalBinary serializes the ciphertext.
func (ct *Ciphertext) MarshalBinary(c *Context) ([]byte, error) {
	var out []byte
	out = binary.LittleEndian.AppendUint32(out, ctMagic)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(ct.C)))
	out = binary.LittleEndian.AppendUint16(out, uint16(c.RQ.Level()))
	out = binary.LittleEndian.AppendUint32(out, uint32(c.Params.N))
	for _, poly := range ct.C {
		if len(poly) != c.RQ.Level() {
			return nil, fmt.Errorf("bfv: ciphertext level mismatch")
		}
		for l, ring := range c.RQ.Rings {
			w := uint(bits.Len64(ring.Q - 1))
			packed, err := ff.PackBits(ff.Vec(poly[l]), w)
			if err != nil {
				return nil, err
			}
			out = append(out, packed...)
		}
	}
	return out, nil
}

// UnmarshalCiphertext parses a ciphertext serialized for this context.
func (c *Context) UnmarshalCiphertext(data []byte) (*Ciphertext, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("bfv: ciphertext blob too short")
	}
	if binary.LittleEndian.Uint32(data) != ctMagic {
		return nil, fmt.Errorf("bfv: bad ciphertext magic")
	}
	nPolys := int(binary.LittleEndian.Uint16(data[4:]))
	level := int(binary.LittleEndian.Uint16(data[6:]))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if level != c.RQ.Level() || n != c.Params.N {
		return nil, fmt.Errorf("bfv: ciphertext parameters (N=%d, L=%d) do not match context (N=%d, L=%d)",
			n, level, c.Params.N, c.RQ.Level())
	}
	if nPolys < 2 || nPolys > 8 {
		return nil, fmt.Errorf("bfv: implausible ciphertext degree %d", nPolys-1)
	}
	off := 12
	ct := &Ciphertext{}
	for p := 0; p < nPolys; p++ {
		poly := c.RQ.NewPoly()
		for l, ring := range c.RQ.Rings {
			w := uint(bits.Len64(ring.Q - 1))
			sz := ff.PackedSize(n, w)
			if off+sz > len(data) {
				return nil, fmt.Errorf("bfv: truncated ciphertext blob")
			}
			vals, err := ff.UnpackBits(data[off:off+sz], n, w)
			if err != nil {
				return nil, err
			}
			for i, v := range vals {
				if v >= ring.Q {
					return nil, fmt.Errorf("bfv: residue %d out of range for prime %d", v, ring.Q)
				}
				poly[l][i] = v
			}
			off += sz
		}
		ct.C = append(ct.C, poly)
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: %d trailing bytes in ciphertext blob", len(data)-off)
	}
	return ct, nil
}

// --- key material serialization ---------------------------------------------

const (
	pkMagic  = 0x42465602
	rlkMagic = 0x42465603
	gkMagic  = 0x42465604
	parMagic = 0x42465605
)

// marshalRNSPoly appends the bit-packed residues of p.
func (c *Context) marshalRNSPoly(out []byte, p rlwe.RNSPoly) ([]byte, error) {
	for l, ring := range c.RQ.Rings {
		w := uint(bits.Len64(ring.Q - 1))
		packed, err := ff.PackBits(ff.Vec(p[l]), w)
		if err != nil {
			return nil, err
		}
		out = append(out, packed...)
	}
	return out, nil
}

// unmarshalRNSPoly reads one RNS polynomial, returning the new offset.
func (c *Context) unmarshalRNSPoly(data []byte, off int) (rlwe.RNSPoly, int, error) {
	p := c.RQ.NewPoly()
	for l, ring := range c.RQ.Rings {
		w := uint(bits.Len64(ring.Q - 1))
		sz := ff.PackedSize(c.Params.N, w)
		if off+sz > len(data) {
			return nil, 0, fmt.Errorf("bfv: truncated polynomial")
		}
		vals, err := ff.UnpackBits(data[off:off+sz], c.Params.N, w)
		if err != nil {
			return nil, 0, err
		}
		for i, v := range vals {
			if v >= ring.Q {
				return nil, 0, fmt.Errorf("bfv: residue out of range")
			}
			p[l][i] = v
		}
		off += sz
	}
	return p, off, nil
}

// MarshalPublicKey serializes pk.
func (pk *PublicKey) MarshalBinary(c *Context) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, pkMagic)
	var err error
	for _, p := range []rlwe.RNSPoly{pk.P0, pk.P1} {
		if out, err = c.marshalRNSPoly(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnmarshalPublicKey parses a public key for this context.
func (c *Context) UnmarshalPublicKey(data []byte) (*PublicKey, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data) != pkMagic {
		return nil, fmt.Errorf("bfv: bad public-key blob")
	}
	off := 4
	p0, off, err := c.unmarshalRNSPoly(data, off)
	if err != nil {
		return nil, err
	}
	p1, off, err := c.unmarshalRNSPoly(data, off)
	if err != nil {
		return nil, err
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: trailing bytes in public-key blob")
	}
	return &PublicKey{P0: p0, P1: p1}, nil
}

// MarshalBinary serializes the relinearization key.
func (rlk *RelinKey) MarshalBinary(c *Context) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, rlkMagic)
	out = binary.LittleEndian.AppendUint16(out, uint16(rlk.base))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(rlk.pairs)))
	var err error
	for _, pair := range rlk.pairs {
		for _, p := range pair {
			if out, err = c.marshalRNSPoly(out, p); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// UnmarshalRelinKey parses a relinearization key for this context.
func (c *Context) UnmarshalRelinKey(data []byte) (*RelinKey, error) {
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != rlkMagic {
		return nil, fmt.Errorf("bfv: bad relin-key blob")
	}
	base := uint(binary.LittleEndian.Uint16(data[4:]))
	digits := int(binary.LittleEndian.Uint16(data[6:]))
	if digits < 1 || digits > 64 {
		return nil, fmt.Errorf("bfv: implausible digit count %d", digits)
	}
	rlk := &RelinKey{base: base}
	off := 8
	for k := 0; k < digits; k++ {
		var pair [2]rlwe.RNSPoly
		var err error
		for j := 0; j < 2; j++ {
			pair[j], off, err = c.unmarshalRNSPoly(data, off)
			if err != nil {
				return nil, err
			}
		}
		rlk.pairs = append(rlk.pairs, pair)
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: trailing bytes in relin-key blob")
	}
	return rlk, nil
}

// MarshalBinary serializes the Galois key set. Galois elements are
// emitted in ascending order so equal key sets marshal to identical
// bytes (the e2e tests compare server replies byte-for-byte, and any
// map-iteration nondeterminism here would leak into derived blobs).
func (gks *GaloisKeys) MarshalBinary(c *Context) ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, gkMagic)
	out = binary.LittleEndian.AppendUint16(out, uint16(gks.base))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(gks.keys)))
	elems := make([]uint64, 0, len(gks.keys))
	for g := range gks.keys {
		elems = append(elems, g)
	}
	slices.Sort(elems)
	var err error
	for _, g := range elems {
		pairs := gks.keys[g]
		out = binary.LittleEndian.AppendUint64(out, g)
		out = binary.LittleEndian.AppendUint16(out, uint16(len(pairs)))
		for _, pair := range pairs {
			for _, p := range pair {
				if out, err = c.marshalRNSPoly(out, p); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// UnmarshalGaloisKeys parses a Galois key set for this context.
func (c *Context) UnmarshalGaloisKeys(data []byte) (*GaloisKeys, error) {
	if len(data) < 8 || binary.LittleEndian.Uint32(data) != gkMagic {
		return nil, fmt.Errorf("bfv: bad galois-key blob")
	}
	base := uint(binary.LittleEndian.Uint16(data[4:]))
	count := int(binary.LittleEndian.Uint16(data[6:]))
	if count < 1 || count > 4096 {
		return nil, fmt.Errorf("bfv: implausible galois-key count %d", count)
	}
	gks := &GaloisKeys{keys: map[uint64][][2]rlwe.RNSPoly{}, base: base}
	off := 8
	for k := 0; k < count; k++ {
		if off+10 > len(data) {
			return nil, fmt.Errorf("bfv: truncated galois-key blob")
		}
		g := binary.LittleEndian.Uint64(data[off:])
		digits := int(binary.LittleEndian.Uint16(data[off+8:]))
		off += 10
		if digits < 1 || digits > 64 {
			return nil, fmt.Errorf("bfv: implausible digit count %d", digits)
		}
		if _, dup := gks.keys[g]; dup {
			return nil, fmt.Errorf("bfv: duplicate galois element %d", g)
		}
		var pairs [][2]rlwe.RNSPoly
		for d := 0; d < digits; d++ {
			var pair [2]rlwe.RNSPoly
			var err error
			for j := 0; j < 2; j++ {
				pair[j], off, err = c.unmarshalRNSPoly(data, off)
				if err != nil {
					return nil, err
				}
			}
			pairs = append(pairs, pair)
		}
		gks.keys[g] = pairs
	}
	if off != len(data) {
		return nil, fmt.Errorf("bfv: trailing bytes in galois-key blob")
	}
	return gks, nil
}

// MarshalBinary serializes the parameter set, so a remote peer can build
// the exact Context a key blob was generated under before parsing it.
func (p Params) MarshalBinary() ([]byte, error) {
	out := binary.LittleEndian.AppendUint32(nil, parMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(p.N))
	out = binary.LittleEndian.AppendUint64(out, p.T)
	out = binary.LittleEndian.AppendUint16(out, uint16(p.Eta))
	out = binary.LittleEndian.AppendUint16(out, uint16(p.RelinBits))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Qs)))
	for _, q := range p.Qs {
		out = binary.LittleEndian.AppendUint64(out, q)
	}
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Ps)))
	for _, q := range p.Ps {
		out = binary.LittleEndian.AppendUint64(out, q)
	}
	return out, nil
}

// UnmarshalParams parses a serialized parameter set.
func UnmarshalParams(data []byte) (Params, error) {
	var p Params
	if len(data) < 22 || binary.LittleEndian.Uint32(data) != parMagic {
		return p, fmt.Errorf("bfv: bad params blob")
	}
	p.N = int(binary.LittleEndian.Uint32(data[4:]))
	p.T = binary.LittleEndian.Uint64(data[8:])
	p.Eta = int(binary.LittleEndian.Uint16(data[16:]))
	p.RelinBits = uint(binary.LittleEndian.Uint16(data[18:]))
	if p.N < 8 || p.N > 1<<20 || p.N&(p.N-1) != 0 {
		return p, fmt.Errorf("bfv: implausible ring degree %d", p.N)
	}
	off := 20
	for pass := 0; pass < 2; pass++ {
		if off+2 > len(data) {
			return p, fmt.Errorf("bfv: truncated params blob")
		}
		n := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if n > 64 {
			return p, fmt.Errorf("bfv: implausible prime count %d", n)
		}
		if off+8*n > len(data) {
			return p, fmt.Errorf("bfv: truncated params blob")
		}
		qs := make([]uint64, n)
		for i := range qs {
			qs[i] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
		if pass == 0 {
			p.Qs = qs
		} else {
			p.Ps = qs
		}
	}
	if off != len(data) {
		return p, fmt.Errorf("bfv: trailing bytes in params blob")
	}
	return p, nil
}

// CiphertextBytes returns the wire size of a degree-1 ciphertext under
// these parameters without materializing one.
func (c *Context) CiphertextBytes() int {
	sz := 12
	for _, ring := range c.RQ.Rings {
		w := uint(bits.Len64(ring.Q - 1))
		sz += 2 * ff.PackedSize(c.Params.N, w)
	}
	return sz
}
