package bfv

import (
	"time"

	"repro/internal/obs"
)

// Metric handles for the BFV encryption pipeline, resolved once from the
// default registry; updates are lock-free atomics so EncryptInto keeps
// its 0 allocs/op steady state (TestEncryptIntoAllocFree still holds with
// instrumentation enabled).
//
//	bfv.encryptions        public-key encryptions performed
//	bfv.limb_workers       RNS limb fan-out width of the last encryption
//	bfv.enc_scratch_hits   pooled encryption scratch reused
//	bfv.enc_scratch_miss   scratch freshly allocated (pool empty)
//	bfv.encrypt_ns         per-encryption latency histogram (ns)
var (
	mEncryptions   = obs.Default().Counter("bfv.encryptions")
	mLimbWorkers   = obs.Default().Gauge("bfv.limb_workers")
	mScratchHits   = obs.Default().Counter("bfv.enc_scratch_hits")
	mScratchMisses = obs.Default().Counter("bfv.enc_scratch_miss")
	mEncryptNs     = obs.Default().Histogram("bfv.encrypt_ns")
)

// observeEncrypt records one finished public-key encryption and the limb
// fan-out width it ran with.
func observeEncrypt(start time.Time, limbWorkers int) {
	mEncryptions.Inc()
	mLimbWorkers.Set(int64(limbWorkers))
	mEncryptNs.Observe(time.Since(start).Nanoseconds())
}
