package bfv

import (
	"bytes"
	"testing"

	"repro/internal/rlwe"
)

// TestGaloisKeysMarshalRoundTrip: marshal → unmarshal → re-marshal must
// be bit-identical (Galois elements are emitted in sorted order, so the
// encoding is canonical despite the map representation), and a rotation
// under the reconstructed keys must produce the exact ciphertext the
// original keys produce.
func TestGaloisKeysMarshalRoundTrip(t *testing.T) {
	par, err := NewParams(1024, 55, 3, 65537)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(par)
	if err != nil {
		t.Fatal(err)
	}
	g := rlwe.NewPRNG("gk-marshal", []byte{7})
	sk, pk, _ := ctx.KeyGen(g)
	gks := ctx.GenGaloisKeys(g, sk, []int{1, 2, 5})

	blob, err := gks.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ctx.UnmarshalGaloisKeys(blob)
	if err != nil {
		t.Fatal(err)
	}
	again, err := back.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatalf("galois-key blob does not round-trip bit-identically (%d vs %d bytes)", len(blob), len(again))
	}

	enc, err := NewEncoder(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]uint64, enc.Slots())
	for i := range v {
		v[i] = uint64(i % 65537)
	}
	pt, err := enc.Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	ct := ctx.Encrypt(pk, pt, g)
	want, err := ctx.RotateColumns(ct, 2, gks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.RotateColumns(ct, 2, back)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := want.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := got.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, gb) {
		t.Fatal("rotation under unmarshaled Galois keys diverges from the original keys")
	}
}

// TestGaloisKeysUnmarshalRejects: corruption must error, never panic.
func TestGaloisKeysUnmarshalRejects(t *testing.T) {
	par, err := NewParams(1024, 55, 3, 65537)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(par)
	if err != nil {
		t.Fatal(err)
	}
	g := rlwe.NewPRNG("gk-reject", []byte{8})
	sk, _, _ := ctx.KeyGen(g)
	gks := ctx.GenGaloisKeys(g, sk, []int{1})
	blob, err := gks.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 4, 7, len(blob) / 3, len(blob) - 1} {
		if _, err := ctx.UnmarshalGaloisKeys(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[1] ^= 0x40
	if _, err := ctx.UnmarshalGaloisKeys(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ctx.UnmarshalGaloisKeys(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestParamsMarshalRoundTrip: the parameter envelope reproduces every
// field exactly.
func TestParamsMarshalRoundTrip(t *testing.T) {
	par, err := NewParams(1024, 55, 4, 65537)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := par.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != par.N || back.T != par.T || back.Eta != par.Eta || back.RelinBits != par.RelinBits {
		t.Fatalf("params round-trip mismatch: %+v != %+v", back, par)
	}
	if len(back.Qs) != len(par.Qs) || len(back.Ps) != len(par.Ps) {
		t.Fatalf("prime chains differ: %+v != %+v", back, par)
	}
	for i := range par.Qs {
		if back.Qs[i] != par.Qs[i] {
			t.Fatalf("Q[%d] %d != %d", i, back.Qs[i], par.Qs[i])
		}
	}
	for _, n := range []int{0, 3, 10, len(blob) - 1} {
		if _, err := UnmarshalParams(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}
