// Package bfv implements a textbook BFV fully homomorphic encryption
// scheme over the RNS RLWE substrate: key generation, public-key
// encryption (the FHE client workload the paper's Table III baselines
// accelerate), decryption, addition, plaintext multiplication, and
// ciphertext multiplication with relinearization.
//
// Ciphertext–ciphertext multiplication uses an exact extended-RNS-basis
// tensor product with big.Int reconstruction at the basis boundaries —
// slower than production BEHZ/HPS RNS arithmetic but exact and simple,
// which is what the HHE server-side demonstration needs (DESIGN.md
// substitution table).
package bfv

import (
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"time"

	"repro/internal/rlwe"
)

// Params fixes a BFV instance.
type Params struct {
	N         int      // ring dimension (power of two)
	Qs        []uint64 // ciphertext RNS primes
	Ps        []uint64 // extension primes for exact tensoring
	T         uint64   // plaintext modulus (PASTA's p for transciphering)
	Eta       int      // centered-binomial noise parameter
	RelinBits uint     // log2 of the relinearization decomposition base
}

// NewParams derives a parameter set: nQ ciphertext primes of qBits bits
// plus enough extension primes for exact multiplication.
func NewParams(n int, qBits uint, nQ int, t uint64) (Params, error) {
	if t < 2 {
		return Params{}, fmt.Errorf("bfv: plaintext modulus %d too small", t)
	}
	qs, err := rlwe.FindNTTPrimes(qBits, n, nQ)
	if err != nil {
		return Params{}, err
	}
	// Extension basis: Q·P > N·Q²/2 ⇒ |P| bits > nQ·qBits + log2(N).
	logN := 0
	for v := 1; v < n; v <<= 1 {
		logN++
	}
	needBits := nQ*int(qBits) + logN + 2
	nP := (needBits + int(qBits) - 2) / (int(qBits) - 1)
	ps, err := rlwe.FindNTTPrimes(qBits-1, n, nP)
	if err != nil {
		return Params{}, err
	}
	// The bases must be disjoint; qBits-1 primes cannot collide with qBits
	// primes, but guard anyway.
	seen := map[uint64]bool{}
	for _, q := range append(append([]uint64{}, qs...), ps...) {
		if seen[q] {
			return Params{}, fmt.Errorf("bfv: basis collision at %d", q)
		}
		seen[q] = true
	}
	return Params{N: n, Qs: qs, Ps: ps, T: t, Eta: 3, RelinBits: 24}, nil
}

// Context holds precomputed ring structures for a parameter set.
type Context struct {
	Params Params
	RQ     *rlwe.RNSRing // ciphertext ring, basis Q
	RQP    *rlwe.RNSRing // extended ring, basis Q ∪ P
	Delta  *big.Int      // floor(Q / t)
	tBig   *big.Int

	// deltaQi[l] = Δ mod q_l: lets EncryptInto fold Δ·m into c0 with one
	// uint64 multiply per coefficient instead of big.Int CRT embedding.
	deltaQi []uint64

	// enc recycles the sampling scratch of EncryptInto (pointer so
	// WithParallelism views share one pool and Context stays copyable).
	enc *sync.Pool

	// auto caches automorphism index/sign tables per Galois element.
	auto *autoCache
}

// NewContext builds the rings and constants.
func NewContext(p Params) (*Context, error) {
	rq, err := rlwe.NewRNSRing(p.N, p.Qs)
	if err != nil {
		return nil, err
	}
	rqp, err := rlwe.NewRNSRing(p.N, append(append([]uint64{}, p.Qs...), p.Ps...))
	if err != nil {
		return nil, err
	}
	// Exactness requirement for the tensor product: Q·P > N·Q²/2.
	lhs := new(big.Int).Set(rqp.Q)
	rhs := new(big.Int).Mul(rq.Q, rq.Q)
	rhs.Mul(rhs, big.NewInt(int64(p.N)))
	rhs.Rsh(rhs, 1)
	if lhs.Cmp(rhs) <= 0 {
		return nil, fmt.Errorf("bfv: extension basis too small for exact tensoring")
	}
	tBig := new(big.Int).SetUint64(p.T)
	delta := new(big.Int).Quo(rq.Q, tBig)
	c := &Context{Params: p, RQ: rq, RQP: rqp, Delta: delta, tBig: tBig,
		enc: &sync.Pool{}, auto: newAutoCache()}
	tmp := new(big.Int)
	for _, ring := range rq.Rings {
		qi := new(big.Int).SetUint64(ring.Q)
		c.deltaQi = append(c.deltaQi, tmp.Mod(delta, qi).Uint64())
	}
	return c, nil
}

// WithParallelism returns a view of the context whose RNS limb operations
// (and EncryptMany's per-ciphertext fan-out) use n worker goroutines
// (0 = GOMAXPROCS, 1 = sequential). Keys and ciphertexts are
// interchangeable between views; outputs are bit-identical.
func (c *Context) WithParallelism(n int) *Context {
	out := *c
	out.RQ = c.RQ.WithParallelism(n)
	out.RQP = c.RQP.WithParallelism(n)
	return &out
}

// encScratch bundles the ephemeral/noise polynomials and the signed
// sampling buffer one public-key encryption needs, so the steady state
// touches the heap zero times per call (mirroring pasta's workspace).
type encScratch struct {
	u, e1, e2 rlwe.RNSPoly
	signs     []int
}

func (c *Context) getEnc() *encScratch {
	if sc, _ := c.enc.Get().(*encScratch); sc != nil {
		mScratchHits.Inc()
		return sc
	}
	mScratchMisses.Inc()
	return &encScratch{
		u:     c.RQ.NewPoly(),
		e1:    c.RQ.NewPoly(),
		e2:    c.RQ.NewPoly(),
		signs: make([]int, c.Params.N),
	}
}

func (c *Context) putEnc(sc *encScratch) { c.enc.Put(sc) }

// Plaintext is a polynomial with coefficients in [0, T).
type Plaintext []uint64

// NewPlaintext returns the zero plaintext.
func (c *Context) NewPlaintext() Plaintext { return make(Plaintext, c.Params.N) }

// EncodeScalar places v (mod T) in the constant coefficient.
func (c *Context) EncodeScalar(v uint64) Plaintext {
	pt := c.NewPlaintext()
	pt[0] = v % c.Params.T
	return pt
}

// DecodeScalar reads the constant coefficient.
func (pt Plaintext) DecodeScalar() uint64 { return pt[0] }

// SecretKey is the RLWE secret (stored in both domains for convenience).
type SecretKey struct {
	sCoeff rlwe.RNSPoly
	sNTT   rlwe.RNSPoly
}

// PublicKey is the standard RLWE public key, stored in the NTT domain.
type PublicKey struct {
	P0, P1 rlwe.RNSPoly
}

// RelinKey holds the base-2^w decomposition keys for s².
type RelinKey struct {
	pairs [][2]rlwe.RNSPoly // NTT domain: (−(a·s+e)+B^k·s², a)
	base  uint
}

// Ciphertext is a (usually degree-1) BFV ciphertext in coefficient domain.
type Ciphertext struct {
	C []rlwe.RNSPoly
}

// Degree returns len(C) - 1.
func (ct *Ciphertext) Degree() int { return len(ct.C) - 1 }

// Clone deep-copies the ciphertext.
func (ct *Ciphertext) Clone() *Ciphertext {
	out := &Ciphertext{C: make([]rlwe.RNSPoly, len(ct.C))}
	for i := range ct.C {
		out.C[i] = ct.C[i].Clone()
	}
	return out
}

// KeyGen produces a secret, public, and relinearization key from the PRNG.
func (c *Context) KeyGen(g *rlwe.PRNG) (*SecretKey, *PublicKey, *RelinKey) {
	rq := c.RQ
	sk := &SecretKey{sCoeff: rq.TernaryPoly(g)}
	sk.sNTT = sk.sCoeff.Clone()
	rq.NTT(sk.sNTT)

	pk := &PublicKey{}
	a := rq.UniformPoly(g) // treated as NTT-domain
	e := rq.NoisePoly(g, c.Params.Eta)
	rq.NTT(e)
	// p0 = -(a·s + e), p1 = a.
	p0 := rq.NewPoly()
	rq.MulCoeff(p0, a, sk.sNTT)
	rq.Add(p0, p0, e)
	rq.Neg(p0, p0)
	pk.P0, pk.P1 = p0, a

	rlk := c.genRelinKey(g, sk)
	return sk, pk, rlk
}

func (c *Context) genRelinKey(g *rlwe.PRNG, sk *SecretKey) *RelinKey {
	rq := c.RQ
	s2 := rq.NewPoly()
	rq.MulCoeff(s2, sk.sNTT, sk.sNTT)
	rq.INTT(s2)
	return &RelinKey{
		base:  c.Params.RelinBits,
		pairs: c.genSwitchKey(g, sk, s2),
	}
}

// deltaM returns Δ·m as an RNS polynomial in coefficient domain.
func (c *Context) deltaM(pt Plaintext) rlwe.RNSPoly {
	rq := c.RQ
	out := rq.NewPoly()
	v := new(big.Int)
	for i, m := range pt {
		if m == 0 {
			continue
		}
		v.SetUint64(m % c.Params.T)
		v.Mul(v, c.Delta)
		rq.SetCoeffBig(out, i, v)
	}
	return out
}

// NewCiphertext returns a zero degree-1 ciphertext of the context's
// shape, for use with EncryptInto.
func (c *Context) NewCiphertext() *Ciphertext {
	return &Ciphertext{C: []rlwe.RNSPoly{c.RQ.NewPoly(), c.RQ.NewPoly()}}
}

// Encrypt performs public-key encryption: the exact client-side workload
// of the paper's PKE baseline (one NTT of the ephemeral u plus two
// inverse NTTs per modulus). Allocates only the returned ciphertext;
// see EncryptInto for the fully allocation-free steady state.
func (c *Context) Encrypt(pk *PublicKey, pt Plaintext, g *rlwe.PRNG) *Ciphertext {
	ct := c.NewCiphertext()
	c.EncryptInto(pk, pt, g, ct)
	return ct
}

// EncryptInto encrypts pt into the caller's degree-1 ciphertext with zero
// steady-state heap allocations (sampling scratch comes from the
// context's pool; the transforms run lazily in place). It consumes the
// PRNG stream in exactly the order Encrypt always has — u, e1, e2 — so
// the two entry points are bit-identical for equal seeds.
func (c *Context) EncryptInto(pk *PublicKey, pt Plaintext, g *rlwe.PRNG, ct *Ciphertext) {
	if len(ct.C) != 2 {
		panic(fmt.Sprintf("bfv: EncryptInto needs a degree-1 ciphertext, got degree %d", ct.Degree()))
	}
	start := time.Now()
	rq := c.RQ
	sc := c.getEnc()

	rlwe.FillSigned(sc.signs, g.SignedTernary)
	rq.SignedPolyInto(sc.u, sc.signs)
	rq.NTT(sc.u)
	eta := c.Params.Eta
	rlwe.FillSigned(sc.signs, func() int { return g.SignedNoise(eta) })
	rq.SignedPolyInto(sc.e1, sc.signs)
	rlwe.FillSigned(sc.signs, func() int { return g.SignedNoise(eta) })
	rq.SignedPolyInto(sc.e2, sc.signs)

	c0, c1 := ct.C[0], ct.C[1]
	rq.MulCoeff(c0, pk.P0, sc.u)
	rq.INTT(c0)
	rq.Add(c0, c0, sc.e1)
	c.addDeltaM(c0, pt)

	rq.MulCoeff(c1, pk.P1, sc.u)
	rq.INTT(c1)
	rq.Add(c1, c1, sc.e2)

	c.putEnc(sc)
	observeEncrypt(start, c.limbWorkers())
}

// limbWorkers resolves the effective RNS limb fan-out width for metrics.
func (c *Context) limbWorkers() int {
	if w := c.RQ.Parallelism(); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// addDeltaM adds Δ·m to p in place using the per-limb residues of Δ —
// one uint64 multiply per (nonzero) coefficient, no big.Int. Produces the
// same residues as deltaM: (m·Δ) mod q_l = (m mod q_l)·(Δ mod q_l) mod q_l.
func (c *Context) addDeltaM(p rlwe.RNSPoly, pt Plaintext) {
	if c.RQ.Sequential() {
		// Direct loop: a closure passed to ForEachLimb escapes and would
		// cost a heap allocation per encryption.
		for l := range c.RQ.Rings {
			c.addDeltaMLimb(p, pt, l)
		}
		return
	}
	c.RQ.ForEachLimb(func(l int) { c.addDeltaMLimb(p, pt, l) })
}

func (c *Context) addDeltaMLimb(p rlwe.RNSPoly, pt Plaintext, l int) {
	t := c.Params.T
	mod := c.RQ.Rings[l].Mod()
	dQi := c.deltaQi[l]
	dst := p[l]
	for i, m := range pt {
		if m == 0 {
			continue
		}
		dst[i] = mod.Add(dst[i], mod.Mul(mod.Reduce(m%t), dQi))
	}
}

// EncryptMany encrypts a batch of plaintexts under one key, drawing all
// randomness sequentially from g (so the outputs equal len(pts)
// successive Encrypt calls bit for bit) and then fanning the
// transform-heavy computation of the independent ciphertexts across
// GOMAXPROCS workers. The key/NTT-domain setup — scratch acquisition and
// fan-out spin-up — is paid once for the whole batch.
func (c *Context) EncryptMany(pk *PublicKey, pts []Plaintext, g *rlwe.PRNG) []*Ciphertext {
	n := len(pts)
	cts := make([]*Ciphertext, n)
	if n == 0 {
		return cts
	}
	// Phase 1 (sequential): consume the PRNG in Encrypt's order per
	// ciphertext. u is stored pre-NTT; the transform moves to phase 2.
	us := make([]rlwe.RNSPoly, n)
	e1s := make([]rlwe.RNSPoly, n)
	e2s := make([]rlwe.RNSPoly, n)
	signs := make([]int, c.Params.N)
	eta := c.Params.Eta
	rq := c.RQ
	for i := range pts {
		us[i], e1s[i], e2s[i] = rq.NewPoly(), rq.NewPoly(), rq.NewPoly()
		rlwe.FillSigned(signs, g.SignedTernary)
		rq.SignedPolyInto(us[i], signs)
		rlwe.FillSigned(signs, func() int { return g.SignedNoise(eta) })
		rq.SignedPolyInto(e1s[i], signs)
		rlwe.FillSigned(signs, func() int { return g.SignedNoise(eta) })
		rq.SignedPolyInto(e2s[i], signs)
	}
	// Phase 2 (parallel): ciphertexts are independent. Workers use a
	// sequential ring view so limb- and ciphertext-level fan-out don't
	// compound.
	seq := c.WithParallelism(1)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				cts[i] = seq.encryptPrepared(pk, pts[i], us[i], e1s[i], e2s[i])
			}
		}(w)
	}
	wg.Wait()
	return cts
}

// encryptPrepared finishes one encryption from pre-sampled randomness.
func (c *Context) encryptPrepared(pk *PublicKey, pt Plaintext, u, e1, e2 rlwe.RNSPoly) *Ciphertext {
	start := time.Now()
	rq := c.RQ
	ct := c.NewCiphertext()
	rq.NTT(u)
	c0, c1 := ct.C[0], ct.C[1]
	rq.MulCoeff(c0, pk.P0, u)
	rq.INTT(c0)
	rq.Add(c0, c0, e1)
	c.addDeltaM(c0, pt)
	rq.MulCoeff(c1, pk.P1, u)
	rq.INTT(c1)
	rq.Add(c1, c1, e2)
	observeEncrypt(start, c.limbWorkers())
	return ct
}

// EncryptSymmetric encrypts under the secret key (fresh ciphertexts with
// lower noise; used for the HHE key transport in tests).
func (c *Context) EncryptSymmetric(sk *SecretKey, pt Plaintext, g *rlwe.PRNG) *Ciphertext {
	rq := c.RQ
	a := rq.UniformPoly(g) // NTT domain
	e := rq.NoisePoly(g, c.Params.Eta)

	c0 := rq.NewPoly()
	rq.MulCoeff(c0, a, sk.sNTT)
	rq.INTT(c0)
	rq.Neg(c0, c0)
	rq.Add(c0, c0, e)
	rq.Add(c0, c0, c.deltaM(pt))

	c1 := a.Clone()
	rq.INTT(c1)
	return &Ciphertext{C: []rlwe.RNSPoly{c0, c1}}
}

// phase computes c0 + c1·s (+ c2·s² …) in coefficient domain.
func (c *Context) phase(ct *Ciphertext, sk *SecretKey) rlwe.RNSPoly {
	rq := c.RQ
	acc := ct.C[0].Clone()
	sPow := sk.sNTT.Clone()
	for i := 1; i < len(ct.C); i++ {
		term := ct.C[i].Clone()
		rq.NTT(term)
		rq.MulCoeff(term, term, sPow)
		rq.INTT(term)
		rq.Add(acc, acc, term)
		if i+1 < len(ct.C) {
			next := rq.NewPoly()
			rq.MulCoeff(next, sPow, sk.sNTT)
			sPow = next
		}
	}
	return acc
}

// Decrypt recovers the plaintext: round(t/Q · (c0 + c1·s)) mod t.
func (c *Context) Decrypt(ct *Ciphertext, sk *SecretKey) Plaintext {
	rq := c.RQ
	v := c.phase(ct, sk)
	pt := c.NewPlaintext()
	num := new(big.Int)
	for i := 0; i < c.Params.N; i++ {
		w := rq.ReconstructCentered(v, i)
		num.Mul(w, c.tBig)
		roundDiv(num, rq.Q)
		num.Mod(num, c.tBig)
		pt[i] = num.Uint64()
	}
	return pt
}

// roundDiv sets v = round(v / q) for signed v.
func roundDiv(v *big.Int, q *big.Int) {
	half := new(big.Int).Rsh(q, 1)
	if v.Sign() >= 0 {
		v.Add(v, half)
	} else {
		v.Sub(v, half)
	}
	v.Quo(v, q)
}

// NoiseBudget returns the remaining noise budget of ct in bits: log2(Q/2)
// minus the log of the largest error coefficient. Decryption is correct
// while the budget is positive.
func (c *Context) NoiseBudget(ct *Ciphertext, sk *SecretKey, pt Plaintext) int {
	rq := c.RQ
	v := c.phase(ct, sk)
	// err = v - Δ·m, centered.
	dm := c.deltaM(pt)
	rq.Sub(v, v, dm)
	maxBits := 0
	for i := 0; i < c.Params.N; i++ {
		w := rq.ReconstructCentered(v, i)
		if b := w.BitLen(); b > maxBits {
			maxBits = b
		}
	}
	return rq.Q.BitLen() - 1 - maxBits
}

// Add returns a + b (component-wise over matched degrees).
func (c *Context) Add(a, b *Ciphertext) *Ciphertext {
	la, lb := a, b
	if len(la.C) < len(lb.C) {
		la, lb = lb, la
	}
	out := la.Clone()
	for i := range lb.C {
		c.RQ.Add(out.C[i], out.C[i], lb.C[i])
	}
	return out
}

// Sub returns a - b.
func (c *Context) Sub(a, b *Ciphertext) *Ciphertext {
	nb := b.Clone()
	for i := range nb.C {
		c.RQ.Neg(nb.C[i], nb.C[i])
	}
	return c.Add(a, nb)
}

// AddPlain returns ct + m.
func (c *Context) AddPlain(ct *Ciphertext, pt Plaintext) *Ciphertext {
	out := ct.Clone()
	c.RQ.Add(out.C[0], out.C[0], c.deltaM(pt))
	return out
}

// SubPlainFrom returns m - ct (used by the HHE decryption circuit:
// plaintext ciphertext-word minus encrypted keystream).
func (c *Context) SubPlainFrom(pt Plaintext, ct *Ciphertext) *Ciphertext {
	out := ct.Clone()
	for i := range out.C {
		c.RQ.Neg(out.C[i], out.C[i])
	}
	c.RQ.Add(out.C[0], out.C[0], c.deltaM(pt))
	return out
}

// MulScalar returns k·ct for a plaintext scalar k ∈ [0, T).
func (c *Context) MulScalar(ct *Ciphertext, k uint64) *Ciphertext {
	out := ct.Clone()
	kb := new(big.Int).SetUint64(k % c.Params.T)
	for i := range out.C {
		c.RQ.MulScalarBig(out.C[i], kb, out.C[i])
	}
	return out
}

// Mul returns a·b with relinearization back to degree 1.
func (c *Context) Mul(a, b *Ciphertext, rlk *RelinKey) (*Ciphertext, error) {
	if a.Degree() != 1 || b.Degree() != 1 {
		return nil, fmt.Errorf("bfv: Mul requires degree-1 ciphertexts (got %d, %d)", a.Degree(), b.Degree())
	}
	e0, e1, e2 := c.tensor(a, b)
	return c.relinearize(e0, e1, e2, rlk), nil
}

// tensor computes the scaled tensor product: round(t/Q · (a ⊗ b)) in
// basis Q, exactly, via the extended basis Q∪P.
func (c *Context) tensor(a, b *Ciphertext) (e0, e1, e2 rlwe.RNSPoly) {
	rq, rqp := c.RQ, c.RQP
	// Lift all four polys into the extended basis using centered
	// representatives, then to NTT domain.
	lift := func(p rlwe.RNSPoly) rlwe.RNSPoly {
		out := rqp.NewPoly()
		for i := 0; i < c.Params.N; i++ {
			rqp.SetCoeffBig(out, i, rq.ReconstructCentered(p, i))
		}
		rqp.NTT(out)
		return out
	}
	a0, a1 := lift(a.C[0]), lift(a.C[1])
	b0, b1 := lift(b.C[0]), lift(b.C[1])

	t0, t1, t2 := rqp.NewPoly(), rqp.NewPoly(), rqp.NewPoly()
	tmp := rqp.NewPoly()
	rqp.MulCoeff(t0, a0, b0)
	rqp.MulCoeff(t1, a0, b1)
	rqp.MulCoeff(tmp, a1, b0)
	rqp.Add(t1, t1, tmp)
	rqp.MulCoeff(t2, a1, b1)
	rqp.INTT(t0)
	rqp.INTT(t1)
	rqp.INTT(t2)

	// Scale each coefficient: round(t·v / Q), back into basis Q.
	scale := func(p rlwe.RNSPoly) rlwe.RNSPoly {
		out := rq.NewPoly()
		num := new(big.Int)
		for i := 0; i < c.Params.N; i++ {
			w := rqp.ReconstructCentered(p, i) // exact integer tensor coeff
			num.Mul(w, c.tBig)
			roundDiv(num, rq.Q)
			rq.SetCoeffBig(out, i, num)
		}
		return out
	}
	return scale(t0), scale(t1), scale(t2)
}

// relinearize folds the degree-2 component back using the relin key.
func (c *Context) relinearize(e0, e1, e2 rlwe.RNSPoly, rlk *RelinKey) *Ciphertext {
	p0, p1 := c.keySwitch(e2, rlk.pairs, rlk.base)
	c.RQ.Add(p0, p0, e0)
	c.RQ.Add(p1, p1, e1)
	return &Ciphertext{C: []rlwe.RNSPoly{p0, p1}}
}
