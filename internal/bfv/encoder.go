package bfv

import (
	"fmt"

	"repro/internal/ff"
	"repro/internal/rlwe"
)

// Encoder maps vectors of N plaintext slots to polynomials of
// Z_t[X]/(X^N+1) via the CRT/NTT isomorphism (BFV batching). It requires
// the plaintext modulus to be a prime with t ≡ 1 (mod 2N) — satisfied by
// PASTA's p = 65537 for every ring size used here, which is exactly why
// HHE transciphering into batched BFV works so naturally.
//
// Slots are arranged in the standard 2 × N/2 hypercube: RotateColumns
// cyclically rotates within each row of N/2 slots and RotateRows swaps
// the two rows; the encoder's slot order matches those automorphisms.
type Encoder struct {
	ctx *Context
	pt  *rlwe.Ring // Z_t[X]/(X^N+1): reuses the NTT machinery

	// slotToNTT[s] is the NTT-output position holding slot s.
	slotToNTT []int
	nttToSlot []int
}

// NewEncoder builds the batching encoder for the context.
func NewEncoder(ctx *Context) (*Encoder, error) {
	n := ctx.Params.N
	t := ctx.Params.T
	if (t-1)%uint64(2*n) != 0 {
		return nil, fmt.Errorf("bfv: plaintext modulus %d does not support batching at N=%d (t ≢ 1 mod 2N)", t, n)
	}
	ring, err := rlwe.NewRing(n, t)
	if err != nil {
		return nil, err
	}
	e := &Encoder{ctx: ctx, pt: ring}
	if err := e.buildSlotPermutation(); err != nil {
		return nil, err
	}
	return e, nil
}

// buildSlotPermutation determines empirically which NTT output position
// evaluates the polynomial at ζ^(5^s) (row 0) and ζ^(-5^s) (row 1),
// avoiding any dependence on the NTT's internal ordering conventions:
// it transforms the monomial X and reads off each position's evaluation
// point, then takes a discrete log over the 2N roots.
func (e *Encoder) buildSlotPermutation() error {
	n := e.pt.N
	mod := e.pt.Mod()
	m := uint64(2 * n)

	// NTT(X): position i holds ζ^{e_i} where e_i is that position's
	// evaluation exponent.
	x := e.pt.NewPoly()
	x[1] = 1
	e.pt.NTT(x)

	// Discrete-log table over the cyclic group of 2N-th roots: recover ζ
	// itself first. ζ generates all primitive 2N-th roots; X's NTT values
	// are exactly those roots, so take any of them as the dlog base.
	base := x[0]
	logTable := make(map[uint64]uint64, m)
	acc := uint64(1)
	for j := uint64(0); j < m; j++ {
		logTable[acc] = j
		acc = mod.Mul(acc, base)
	}
	if acc != 1 {
		return fmt.Errorf("bfv: slot base has wrong order")
	}

	expAt := make([]uint64, n) // exponent of base at each NTT position
	posOf := make(map[uint64]int, n)
	for i := 0; i < n; i++ {
		lg, ok := logTable[x[i]]
		if !ok {
			return fmt.Errorf("bfv: NTT output %d is not a 2N-th root", i)
		}
		expAt[i] = lg
		posOf[lg] = i
	}
	_ = expAt

	// Slot s of row 0 lives at exponent 5^s (times the base ordering);
	// row 1 at -5^s. All arithmetic on exponents is mod 2N.
	e.slotToNTT = make([]int, n)
	e.nttToSlot = make([]int, n)
	g := uint64(1) // 5^s mod 2N, as power of the *base* exponent 1? base exponent is x[0]'s root.
	// The base above is ζ^{e_0}; exponents recorded are relative to it.
	// Absolute exponents: every evaluation point is an odd power of the
	// primitive 2N-th root ψ; relative logs differ by the unit e_0, so
	// the orbit structure under multiplication by 5 is preserved. Walk
	// the orbit of 5 directly on the relative exponents.
	for s := 0; s < n/2; s++ {
		p0, ok0 := posOf[g]
		p1, ok1 := posOf[(m-g)%m]
		if !ok0 || !ok1 {
			return fmt.Errorf("bfv: missing evaluation point for slot %d", s)
		}
		e.slotToNTT[s] = p0
		e.slotToNTT[s+n/2] = p1
		g = g * 5 % m
	}
	for s, p := range e.slotToNTT {
		e.nttToSlot[p] = s
	}
	return nil
}

// Encode maps up to N slot values (mod t) to a plaintext polynomial.
// Unfilled slots are zero.
func (e *Encoder) Encode(slots []uint64) (Plaintext, error) {
	n := e.pt.N
	if len(slots) > n {
		return nil, fmt.Errorf("bfv: %d slots exceed capacity %d", len(slots), n)
	}
	vals := e.pt.NewPoly()
	for s, v := range slots {
		vals[e.slotToNTT[s]] = v % e.ctx.Params.T
	}
	e.pt.INTT(vals)
	return Plaintext(vals), nil
}

// Decode recovers all N slot values from a plaintext polynomial.
func (e *Encoder) Decode(pt Plaintext) []uint64 {
	vals := rlwe.Poly(pt).Clone()
	e.pt.NTT(vals)
	out := make([]uint64, e.pt.N)
	for p, v := range vals {
		out[e.nttToSlot[p]] = v
	}
	return out
}

// Slots returns the column count N/2 (each of the two rows holds that
// many slots).
func (e *Encoder) Slots() int { return e.pt.N / 2 }

// EncodeReplicated fills row 0 (and row 1) with v repeated cyclically —
// the packing that makes slot rotations act as rotations modulo len(v)
// for the packed matrix–vector method. len(v) must divide N/2.
func (e *Encoder) EncodeReplicated(v []uint64) (Plaintext, error) {
	half := e.pt.N / 2
	if len(v) == 0 || half%len(v) != 0 {
		return nil, fmt.Errorf("bfv: replicated length %d must divide %d", len(v), half)
	}
	slots := make([]uint64, e.pt.N)
	for i := 0; i < half; i++ {
		slots[i] = v[i%len(v)]
		slots[half+i] = v[i%len(v)]
	}
	return e.Encode(slots)
}

// DecodeReplicated reads the first n slots of row 0.
func (e *Encoder) DecodeReplicated(pt Plaintext, n int) []uint64 {
	return e.Decode(pt)[:n]
}

// Mod returns the plaintext-side modulus wrapper.
func (e *Encoder) Mod() ff.Modulus { return e.pt.Mod() }
