package bfv

import (
	"testing"

	"repro/internal/rlwe"
)

func encoderContext(t *testing.T) (*Context, *Encoder, *SecretKey, *PublicKey, *RelinKey, *rlwe.PRNG) {
	t.Helper()
	par, err := NewParams(1024, 55, 3, 65537)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(par)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := NewEncoder(ctx)
	if err != nil {
		t.Fatal(err)
	}
	g := rlwe.NewPRNG("encoder-test", []byte{2})
	sk, pk, rlk := ctx.KeyGen(g)
	return ctx, enc, sk, pk, rlk, g
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	_, enc, _, _, _, _ := encoderContext(t)
	slots := make([]uint64, 1024)
	for i := range slots {
		slots[i] = uint64(i*i+5) % 65537
	}
	pt, err := enc.Encode(slots)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(pt)
	for i := range slots {
		if got[i] != slots[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], slots[i])
		}
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	_, enc, _, _, _, _ := encoderContext(t)
	if _, err := enc.Encode(make([]uint64, 1025)); err == nil {
		t.Fatal("oversized slot vector accepted")
	}
}

// TestBatchedSIMDAdd: encrypted slot-wise addition.
func TestBatchedSIMDAdd(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	a := []uint64{1, 2, 3, 4}
	b := []uint64{10, 20, 30, 40}
	pa, _ := enc.Encode(a)
	pb, _ := enc.Encode(b)
	ca := ctx.Encrypt(pk, pa, g)
	cb := ctx.Encrypt(pk, pb, g)
	sum := ctx.Add(ca, cb)
	got := enc.Decode(ctx.Decrypt(sum, sk))
	for i := range a {
		if got[i] != a[i]+b[i] {
			t.Fatalf("slot %d: %d", i, got[i])
		}
	}
}

// TestBatchedSIMDMul: Mul multiplies slot-wise under batching.
func TestBatchedSIMDMul(t *testing.T) {
	ctx, enc, sk, pk, rlk, g := encoderContext(t)
	a := []uint64{7, 100, 65536, 3}
	b := []uint64{3, 100, 2, 9}
	pa, _ := enc.Encode(a)
	pb, _ := enc.Encode(b)
	ca := ctx.Encrypt(pk, pa, g)
	cb := ctx.Encrypt(pk, pb, g)
	prod, err := ctx.Mul(ca, cb, rlk)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ctx.Decrypt(prod, sk))
	for i := range a {
		want := a[i] * b[i] % 65537
		if got[i] != want {
			t.Fatalf("slot %d: %d != %d", i, got[i], want)
		}
	}
}

// TestMulPlainSlotwise: plaintext multiplication is slot-wise too.
func TestMulPlainSlotwise(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	a := []uint64{5, 6, 7, 8}
	mask := []uint64{1, 0, 2, 0}
	pa, _ := enc.Encode(a)
	pm, _ := enc.Encode(mask)
	ca := ctx.Encrypt(pk, pa, g)
	out := ctx.MulPlain(ca, pm)
	got := enc.Decode(ctx.Decrypt(out, sk))
	want := []uint64{5, 0, 14, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestRotateColumns: slot s receives the value of slot s+k.
func TestRotateColumns(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	gks := ctx.GenGaloisKeys(g, sk, []int{1, 2, 511})

	half := enc.Slots()
	slots := make([]uint64, 2*half)
	for i := range slots {
		slots[i] = uint64(i + 1)
	}
	pt, _ := enc.Encode(slots)
	ct := ctx.Encrypt(pk, pt, g)

	for _, k := range []int{1, 2} {
		rot, err := ctx.RotateColumns(ct, k, gks)
		if err != nil {
			t.Fatal(err)
		}
		got := enc.Decode(ctx.Decrypt(rot, sk))
		for s := 0; s < half; s++ {
			want := slots[(s+k)%half]
			if got[s] != want {
				t.Fatalf("k=%d row0 slot %d: %d != %d", k, s, got[s], want)
			}
			want = slots[half+(s+k)%half]
			if got[half+s] != want {
				t.Fatalf("k=%d row1 slot %d: %d != %d", k, s, got[half+s], want)
			}
		}
	}
}

func TestRotateColumnsNegativeStep(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	gks := ctx.GenGaloisKeys(g, sk, []int{-1})
	half := enc.Slots()
	slots := make([]uint64, 2*half)
	for i := range slots {
		slots[i] = uint64(2*i + 3)
	}
	pt, _ := enc.Encode(slots)
	ct := ctx.Encrypt(pk, pt, g)
	rot, err := ctx.RotateColumns(ct, -1, gks)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ctx.Decrypt(rot, sk))
	for s := 0; s < half; s++ {
		if got[s] != slots[(s+half-1)%half] {
			t.Fatalf("slot %d: %d", s, got[s])
		}
	}
}

func TestRotateRows(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	gks := ctx.GenGaloisKeys(g, sk, nil)
	half := enc.Slots()
	slots := make([]uint64, 2*half)
	for i := range slots {
		slots[i] = uint64(i)
	}
	pt, _ := enc.Encode(slots)
	ct := ctx.Encrypt(pk, pt, g)
	sw, err := ctx.RotateRows(ct, gks)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ctx.Decrypt(sw, sk))
	for s := 0; s < half; s++ {
		if got[s] != slots[half+s] || got[half+s] != slots[s] {
			t.Fatalf("row swap failed at slot %d", s)
		}
	}
}

func TestRotationRequiresKey(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	gks := ctx.GenGaloisKeys(g, sk, []int{1})
	pt, _ := enc.Encode([]uint64{1})
	ct := ctx.Encrypt(pk, pt, g)
	if _, err := ctx.RotateColumns(ct, 7, gks); err == nil {
		t.Fatal("rotation without key succeeded")
	}
}

func TestRotateZeroIsIdentity(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	gks := ctx.GenGaloisKeys(g, sk, nil)
	pt, _ := enc.Encode([]uint64{9, 8, 7})
	ct := ctx.Encrypt(pk, pt, g)
	rot, err := ctx.RotateColumns(ct, 0, gks)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ctx.Decrypt(rot, sk))
	if got[0] != 9 || got[1] != 8 || got[2] != 7 {
		t.Fatalf("identity rotation changed slots: %v", got[:3])
	}
}

func TestEncodeReplicated(t *testing.T) {
	_, enc, _, _, _, _ := encoderContext(t)
	v := []uint64{4, 5, 6, 7}
	pt, err := enc.EncodeReplicated(v)
	if err != nil {
		t.Fatal(err)
	}
	slots := enc.Decode(pt)
	half := enc.Slots()
	for i := 0; i < half; i++ {
		if slots[i] != v[i%4] || slots[half+i] != v[i%4] {
			t.Fatalf("replication broken at %d", i)
		}
	}
	if _, err := enc.EncodeReplicated([]uint64{1, 2, 3}); err == nil {
		t.Fatal("non-dividing length accepted")
	}
}

// TestReplicatedRotationActsModT: with period-t replication, a rotation
// by k acts as rotation by k mod t on the logical vector — the property
// the packed matrix–vector method relies on.
func TestReplicatedRotationActsModT(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	gks := ctx.GenGaloisKeys(g, sk, []int{1})
	v := []uint64{10, 20, 30, 40}
	pt, _ := enc.EncodeReplicated(v)
	ct := ctx.Encrypt(pk, pt, g)
	rot, err := ctx.RotateColumns(ct, 1, gks)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.DecodeReplicated(ctx.Decrypt(rot, sk), 4)
	want := []uint64{20, 30, 40, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestCiphertextMarshalRoundTrip(t *testing.T) {
	ctx, enc, sk, pk, _, g := encoderContext(t)
	pt, _ := enc.Encode([]uint64{11, 22, 33})
	ct := ctx.Encrypt(pk, pt, g)
	blob, err := ct.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) != ctx.CiphertextBytes() {
		t.Fatalf("blob = %d bytes, CiphertextBytes() = %d", len(blob), ctx.CiphertextBytes())
	}
	back, err := ctx.UnmarshalCiphertext(blob)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ctx.Decrypt(back, sk))
	if got[0] != 11 || got[1] != 22 || got[2] != 33 {
		t.Fatalf("decoded %v", got[:3])
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	ctx, _, _, pk, _, g := encoderContext(t)
	if _, err := ctx.UnmarshalCiphertext([]byte{1, 2, 3}); err == nil {
		t.Fatal("short blob accepted")
	}
	ct := ctx.Encrypt(pk, ctx.EncodeScalar(1), g)
	blob, _ := ct.MarshalBinary(ctx)
	blob[0] ^= 0xFF
	if _, err := ctx.UnmarshalCiphertext(blob); err == nil {
		t.Fatal("bad magic accepted")
	}
	blob[0] ^= 0xFF
	if _, err := ctx.UnmarshalCiphertext(blob[:len(blob)-5]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := ctx.UnmarshalCiphertext(append(blob, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	ctx, enc, sk, pk, rlk, g := encoderContext(t)

	pkBlob, err := pk.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ctx.UnmarshalPublicKey(pkBlob)
	if err != nil {
		t.Fatal(err)
	}
	rlkBlob, err := rlk.MarshalBinary(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rlk2, err := ctx.UnmarshalRelinKey(rlkBlob)
	if err != nil {
		t.Fatal(err)
	}

	// Encrypt with the round-tripped pk, multiply with the round-tripped
	// rlk, decrypt with the original sk.
	pt, _ := enc.Encode([]uint64{123, 456})
	ct := ctx.Encrypt(pk2, pt, g)
	prod, err := ctx.Mul(ct, ct, rlk2)
	if err != nil {
		t.Fatal(err)
	}
	got := enc.Decode(ctx.Decrypt(prod, sk))
	if got[0] != 123*123%65537 || got[1] != 456*456%65537 {
		t.Fatalf("round-tripped keys broken: %v", got[:2])
	}

	if _, err := ctx.UnmarshalPublicKey(rlkBlob); err == nil {
		t.Fatal("rlk blob accepted as pk")
	}
	if _, err := ctx.UnmarshalRelinKey(pkBlob); err == nil {
		t.Fatal("pk blob accepted as rlk")
	}
}
