package bfv

import (
	"testing"

	"repro/internal/rlwe"
)

// ctEqual compares ciphertexts coefficient-wise.
func ctEqual(a, b *Ciphertext) bool {
	if len(a.C) != len(b.C) {
		return false
	}
	for i := range a.C {
		if !a.C[i].Equal(b.C[i]) {
			return false
		}
	}
	return true
}

// TestEncryptIntoMatchesEncrypt pins the zero-allocation entry point
// against the allocating one: same public key, same plaintext, same
// PRNG seed must give bit-identical ciphertexts, so the fast path
// consumes the randomness stream in exactly the oracle's order.
func TestEncryptIntoMatchesEncrypt(t *testing.T) {
	ctx, sk, pk, _, _ := testContext(t)
	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i*7+3) % ctx.Params.T
	}

	g1 := rlwe.NewPRNG("enc-eq", []byte{42})
	g2 := rlwe.NewPRNG("enc-eq", []byte{42})
	want := ctx.Encrypt(pk, pt, g1)
	got := ctx.NewCiphertext()
	ctx.EncryptInto(pk, pt, g2, got)
	if !ctEqual(want, got) {
		t.Fatal("EncryptInto differs from Encrypt for identical PRNG streams")
	}
	if dec := ctx.Decrypt(got, sk); dec[3] != pt[3] || dec[100] != pt[100] {
		t.Fatal("EncryptInto ciphertext does not decrypt to the plaintext")
	}

	// Both must leave the PRNG in the same state (same amount consumed).
	if g1.Uint64() != g2.Uint64() {
		t.Fatal("EncryptInto consumed a different amount of randomness than Encrypt")
	}
}

// TestEncryptManyMatchesSequential: the batched encryptor must be
// bit-identical to a loop of Encrypt calls on the same stream — the
// parallel phase may reorder computation but never sampling.
func TestEncryptManyMatchesSequential(t *testing.T) {
	ctx, _, pk, _, _ := testContext(t)
	const batch = 5
	pts := make([]Plaintext, batch)
	for j := range pts {
		pts[j] = ctx.NewPlaintext()
		for i := range pts[j] {
			pts[j][i] = uint64(i+j*13) % ctx.Params.T
		}
	}

	g1 := rlwe.NewPRNG("many", []byte{7})
	g2 := rlwe.NewPRNG("many", []byte{7})
	var want []*Ciphertext
	for j := range pts {
		want = append(want, ctx.Encrypt(pk, pts[j], g1))
	}
	got := ctx.EncryptMany(pk, pts, g2)
	if len(got) != batch {
		t.Fatalf("EncryptMany returned %d ciphertexts, want %d", len(got), batch)
	}
	for j := range got {
		if !ctEqual(want[j], got[j]) {
			t.Fatalf("EncryptMany[%d] differs from sequential Encrypt", j)
		}
	}
}

// TestEncryptManyEmpty covers the degenerate batch.
func TestEncryptManyEmpty(t *testing.T) {
	ctx, _, pk, _, g := testContext(t)
	if got := ctx.EncryptMany(pk, nil, g); len(got) != 0 {
		t.Fatalf("EncryptMany(nil) returned %d ciphertexts", len(got))
	}
}

// TestEncryptIntoAllocFree asserts the pipeline's steady-state
// allocation contract on a sequential view (the fan-out goroutines of a
// parallel view are themselves allocations). Tolerance 0.5: a
// concurrent GC may clear the sync.Pool between runs.
func TestEncryptIntoAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation heap-allocates stack closures")
	}
	ctx, _, pk, _, g := testContext(t)
	seq := ctx.WithParallelism(1)
	pt := seq.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i) % seq.Params.T
	}
	ct := seq.NewCiphertext()
	seq.EncryptInto(pk, pt, g, ct) // warm the scratch pool
	avg := testing.AllocsPerRun(10, func() {
		seq.EncryptInto(pk, pt, g, ct)
	})
	if avg > 0.5 {
		t.Fatalf("EncryptInto allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestEncryptIntoRejectsWrongDegree: the in-place API only fills
// degree-1 ciphertexts.
func TestEncryptIntoRejectsWrongDegree(t *testing.T) {
	ctx, _, pk, _, g := testContext(t)
	defer func() {
		if recover() == nil {
			t.Fatal("EncryptInto accepted a degree-2 ciphertext")
		}
	}()
	bad := &Ciphertext{C: []rlwe.RNSPoly{ctx.RQ.NewPoly(), ctx.RQ.NewPoly(), ctx.RQ.NewPoly()}}
	ctx.EncryptInto(pk, ctx.NewPlaintext(), g, bad)
}

// TestContextParallelismEquivalence: worker count is an execution
// detail — sequential and parallel context views encrypt identically.
func TestContextParallelismEquivalence(t *testing.T) {
	ctx, _, pk, _, _ := testContext(t)
	seq := ctx.WithParallelism(1)
	par := ctx.WithParallelism(4)
	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(3*i+1) % ctx.Params.T
	}
	g1 := rlwe.NewPRNG("ctx-par", []byte{9})
	g2 := rlwe.NewPRNG("ctx-par", []byte{9})
	a := seq.Encrypt(pk, pt, g1)
	b := par.Encrypt(pk, pt, g2)
	if !ctEqual(a, b) {
		t.Fatal("parallel context view encrypts differently from sequential")
	}
}

// TestAutomorphismTableCache: repeated applications hit the cached
// index table and stay correct; the cache is shared across views.
func TestAutomorphismTableCache(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	gks := ctx.GenGaloisKeys(g, sk, []int{1})

	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i) % ctx.Params.T
	}
	ct := ctx.Encrypt(pk, pt, g)

	first, err := ctx.RotateColumns(ct, 1, gks)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ctx.RotateColumns(ct, 1, gks) // cache hit path
	if err != nil {
		t.Fatal(err)
	}
	// Rotation *semantics* are covered by TestRotateColumns (on encoded
	// slots); here we pin that the cached table is deterministic across
	// applications and shared context views.
	d1, d2 := ctx.Decrypt(first, sk), ctx.Decrypt(second, sk)
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("coeff %d: cached automorphism differs between applications", i)
		}
	}

	// A parallel view shares the cache and must agree.
	par := ctx.WithParallelism(4)
	third, err := par.RotateColumns(ct, 1, gks)
	if err != nil {
		t.Fatal(err)
	}
	d3 := par.Decrypt(third, sk)
	for i := range d1 {
		if d1[i] != d3[i] {
			t.Fatalf("coeff %d: parallel-view automorphism differs", i)
		}
	}
}
