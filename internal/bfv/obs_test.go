package bfv

import (
	"testing"

	"repro/internal/obs"
)

// TestEncryptMetricsNonzero: the BFV pipeline's observability counters
// advance with both the single-shot and batch encryption entry points.
func TestEncryptMetricsNonzero(t *testing.T) {
	ctx, _, pk, _, g := testContext(t)
	reg := obs.Default()
	before := reg.Counter("bfv.encryptions").Value()
	histBefore := reg.Histogram("bfv.encrypt_ns").Count()

	pt := ctx.NewPlaintext()
	pt[0] = 1
	ct := ctx.NewCiphertext()
	ctx.EncryptInto(pk, pt, g, ct)
	cts := ctx.EncryptMany(pk, []Plaintext{pt, pt, pt}, g)
	if len(cts) != 3 {
		t.Fatalf("EncryptMany returned %d ciphertexts", len(cts))
	}

	if got := reg.Counter("bfv.encryptions").Value() - before; got != 4 {
		t.Fatalf("bfv.encryptions advanced by %d, want 4", got)
	}
	if got := reg.Histogram("bfv.encrypt_ns").Count() - histBefore; got != 4 {
		t.Fatalf("bfv.encrypt_ns observed %d encryptions, want 4", got)
	}
	if reg.Gauge("bfv.limb_workers").Value() < 1 {
		t.Fatal("bfv.limb_workers not set")
	}
	hits := reg.Counter("bfv.enc_scratch_hits").Value()
	misses := reg.Counter("bfv.enc_scratch_miss").Value()
	if hits+misses == 0 {
		t.Fatal("encryption scratch pool saw no traffic")
	}
}
