package bfv

import (
	"testing"

	"repro/internal/rlwe"
)

// testContext: small but multiplication-capable parameters, plaintext
// modulus = PASTA's p = 65537.
func testContext(t *testing.T) (*Context, *SecretKey, *PublicKey, *RelinKey, *rlwe.PRNG) {
	t.Helper()
	par, err := NewParams(1024, 55, 3, 65537)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(par)
	if err != nil {
		t.Fatal(err)
	}
	g := rlwe.NewPRNG("bfv-test", []byte{1})
	sk, pk, rlk := ctx.KeyGen(g)
	return ctx, sk, pk, rlk, g
}

func TestEncryptDecrypt(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	for _, v := range []uint64{0, 1, 2, 65536, 12345} {
		ct := ctx.Encrypt(pk, ctx.EncodeScalar(v), g)
		got := ctx.Decrypt(ct, sk).DecodeScalar()
		if got != v%ctx.Params.T {
			t.Fatalf("Dec(Enc(%d)) = %d", v, got)
		}
	}
}

func TestEncryptFullPolynomial(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i*i+7) % ctx.Params.T
	}
	ct := ctx.Encrypt(pk, pt, g)
	back := ctx.Decrypt(ct, sk)
	for i := range pt {
		if back[i] != pt[i] {
			t.Fatalf("coeff %d: %d != %d", i, back[i], pt[i])
		}
	}
}

func TestEncryptSymmetric(t *testing.T) {
	ctx, sk, _, _, g := testContext(t)
	ct := ctx.EncryptSymmetric(sk, ctx.EncodeScalar(424), g)
	if got := ctx.Decrypt(ct, sk).DecodeScalar(); got != 424 {
		t.Fatalf("symmetric Dec(Enc(424)) = %d", got)
	}
}

func TestFreshNoiseBudgetPositive(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	pt := ctx.EncodeScalar(7)
	ct := ctx.Encrypt(pk, pt, g)
	if b := ctx.NoiseBudget(ct, sk, pt); b < 40 {
		t.Fatalf("fresh noise budget = %d bits, want plenty", b)
	}
}

func TestHomomorphicAdd(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	a := ctx.Encrypt(pk, ctx.EncodeScalar(30000), g)
	b := ctx.Encrypt(pk, ctx.EncodeScalar(40000), g)
	sum := ctx.Add(a, b)
	want := (30000 + 40000) % ctx.Params.T
	if got := ctx.Decrypt(sum, sk).DecodeScalar(); got != want {
		t.Fatalf("Add: %d, want %d", got, want)
	}
	diff := ctx.Sub(a, b)
	wantD := (30000 + ctx.Params.T - 40000) % ctx.Params.T
	if got := ctx.Decrypt(diff, sk).DecodeScalar(); got != wantD {
		t.Fatalf("Sub: %d, want %d", got, wantD)
	}
}

func TestAddPlainAndSubPlainFrom(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	ct := ctx.Encrypt(pk, ctx.EncodeScalar(100), g)
	got := ctx.Decrypt(ctx.AddPlain(ct, ctx.EncodeScalar(23)), sk).DecodeScalar()
	if got != 123 {
		t.Fatalf("AddPlain: %d, want 123", got)
	}
	// m - ct: 500 - 100 = 400.
	got = ctx.Decrypt(ctx.SubPlainFrom(ctx.EncodeScalar(500), ct), sk).DecodeScalar()
	if got != 400 {
		t.Fatalf("SubPlainFrom: %d, want 400", got)
	}
}

func TestMulScalar(t *testing.T) {
	ctx, sk, pk, _, g := testContext(t)
	ct := ctx.Encrypt(pk, ctx.EncodeScalar(1234), g)
	out := ctx.MulScalar(ct, 56)
	want := (1234 * 56) % ctx.Params.T
	if got := ctx.Decrypt(out, sk).DecodeScalar(); got != want {
		t.Fatalf("MulScalar: %d, want %d", got, want)
	}
}

func TestHomomorphicMul(t *testing.T) {
	ctx, sk, pk, rlk, g := testContext(t)
	a := ctx.Encrypt(pk, ctx.EncodeScalar(251), g)
	b := ctx.Encrypt(pk, ctx.EncodeScalar(431), g)
	prod, err := ctx.Mul(a, b, rlk)
	if err != nil {
		t.Fatal(err)
	}
	want := (251 * 431) % ctx.Params.T
	if got := ctx.Decrypt(prod, sk).DecodeScalar(); got != want {
		t.Fatalf("Mul: %d, want %d", got, want)
	}
	if prod.Degree() != 1 {
		t.Fatalf("relinearized degree = %d, want 1", prod.Degree())
	}
}

func TestMulDepthTwo(t *testing.T) {
	// x³ — the PASTA cube S-box shape: square then multiply.
	ctx, sk, pk, rlk, g := testContext(t)
	x := uint64(3017)
	ct := ctx.Encrypt(pk, ctx.EncodeScalar(x), g)
	sq, err := ctx.Mul(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := ctx.Mul(sq, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	want := x * x % ctx.Params.T * x % ctx.Params.T
	if got := ctx.Decrypt(cube, sk).DecodeScalar(); got != want {
		t.Fatalf("x³: %d, want %d", got, want)
	}
}

func TestMulPreservesPolynomialStructure(t *testing.T) {
	// Negacyclic semantics: Enc(x)·Enc(x) encrypts x² as a polynomial.
	ctx, sk, pk, rlk, g := testContext(t)
	pt := ctx.NewPlaintext()
	pt[1] = 1 // m = x
	ct := ctx.Encrypt(pk, pt, g)
	sq, err := ctx.Mul(ct, ct, rlk)
	if err != nil {
		t.Fatal(err)
	}
	back := ctx.Decrypt(sq, sk)
	for i, v := range back {
		want := uint64(0)
		if i == 2 {
			want = 1
		}
		if v != want {
			t.Fatalf("coeff %d = %d, want %d", i, v, want)
		}
	}
}

func TestMulRejectsHighDegree(t *testing.T) {
	ctx, _, pk, rlk, g := testContext(t)
	a := ctx.Encrypt(pk, ctx.EncodeScalar(1), g)
	bad := &Ciphertext{C: append(a.Clone().C, ctx.RQ.NewPoly())}
	if _, err := ctx.Mul(bad, a, rlk); err == nil {
		t.Fatal("degree-2 input accepted")
	}
}

func TestParamsValidation(t *testing.T) {
	if _, err := NewParams(1024, 55, 3, 1); err == nil {
		t.Fatal("t=1 accepted")
	}
}

func TestHomomorphicAffineExpression(t *testing.T) {
	// k1·x + k2·y + c — one PASTA affine output element, homomorphically.
	ctx, sk, pk, _, g := testContext(t)
	x, y := uint64(111), uint64(222)
	k1, k2, cst := uint64(7), uint64(9), uint64(5)
	cx := ctx.Encrypt(pk, ctx.EncodeScalar(x), g)
	cy := ctx.Encrypt(pk, ctx.EncodeScalar(y), g)
	expr := ctx.Add(ctx.MulScalar(cx, k1), ctx.MulScalar(cy, k2))
	expr = ctx.AddPlain(expr, ctx.EncodeScalar(cst))
	want := (k1*x + k2*y + cst) % ctx.Params.T
	if got := ctx.Decrypt(expr, sk).DecodeScalar(); got != want {
		t.Fatalf("affine: %d, want %d", got, want)
	}
}

func BenchmarkPKEEncryptN8192(b *testing.B) {
	// The paper's PKE client baseline shape: N = 2^13, three moduli.
	par, err := NewParams(8192, 55, 3, 65537)
	if err != nil {
		b.Fatal(err)
	}
	ctx, err := NewContext(par)
	if err != nil {
		b.Fatal(err)
	}
	g := rlwe.NewPRNG("bench", []byte{9})
	_, pk, _ := ctx.KeyGen(g)
	pt := ctx.NewPlaintext()
	for i := range pt {
		pt[i] = uint64(i) % ctx.Params.T
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Encrypt(pk, pt, g)
	}
}
