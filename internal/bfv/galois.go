package bfv

import (
	"fmt"
	"math/big"
	"sync"

	"repro/internal/rlwe"
)

// autoTable is the precomputed action of one automorphism X → X^g on
// coefficient indices: source coefficient i lands at idx[i], negated when
// neg[i] (the negacyclic wrap past X^N). Like the ring's bit-reversal
// table, it is computed once and shared by every limb and every
// application instead of re-deriving i·g mod 2N per coefficient.
type autoTable struct {
	idx []int
	neg []bool
}

// autoCache memoizes autoTables per Galois element across all context
// views (concurrency-safe: servers rotate from many goroutines).
type autoCache struct {
	mu sync.RWMutex
	m  map[uint64]*autoTable
}

func newAutoCache() *autoCache { return &autoCache{m: map[uint64]*autoTable{}} }

func (c *Context) autoTableFor(galois uint64) *autoTable {
	c.auto.mu.RLock()
	tab := c.auto.m[galois]
	c.auto.mu.RUnlock()
	if tab != nil {
		return tab
	}
	n := c.Params.N
	m := uint64(2 * n)
	g := galois % m
	tab = &autoTable{idx: make([]int, n), neg: make([]bool, n)}
	e := uint64(0) // i·g mod 2N, maintained incrementally
	for i := 0; i < n; i++ {
		if e < uint64(n) {
			tab.idx[i] = int(e)
		} else {
			tab.idx[i] = int(e - uint64(n))
			tab.neg[i] = true
		}
		e += g
		if e >= m {
			e -= m
		}
	}
	c.auto.mu.Lock()
	c.auto.m[galois] = tab
	c.auto.mu.Unlock()
	return tab
}

// GaloisKeys hold key-switching material for a set of automorphisms
// X → X^g, enabling slot rotations on batched ciphertexts.
type GaloisKeys struct {
	keys map[uint64][][2]rlwe.RNSPoly // g → decomposition pairs (NTT domain)
	base uint
}

// rowSwapGalois returns the g of RotateRows (X → X^{2N-1}).
func (c *Context) rowSwapGalois() uint64 { return uint64(2*c.Params.N - 1) }

// columnGalois returns the g of a k-step column rotation (X → X^{5^k}).
func (c *Context) columnGalois(k int) uint64 {
	m := uint64(2 * c.Params.N)
	cols := c.Params.N / 2
	k = ((k % cols) + cols) % cols
	g := uint64(1)
	for i := 0; i < k; i++ {
		g = g * 5 % m
	}
	return g
}

// GenGaloisKeys generates keys for the given column-rotation steps (and
// always for the row swap).
func (c *Context) GenGaloisKeys(g *rlwe.PRNG, sk *SecretKey, steps []int) *GaloisKeys {
	gks := &GaloisKeys{keys: map[uint64][][2]rlwe.RNSPoly{}, base: c.Params.RelinBits}
	want := map[uint64]bool{c.rowSwapGalois(): true}
	for _, k := range steps {
		want[c.columnGalois(k)] = true
	}
	for galois := range want {
		gks.keys[galois] = c.genSwitchKey(g, sk, c.applyAutomorphismPoly(sk.sCoeff, galois))
	}
	return gks
}

// genSwitchKey produces decomposition pairs encrypting B^k · target under
// sk — the shared machinery of relinearization (target = s²) and Galois
// keys (target = σ_g(s)). target is in coefficient domain.
func (c *Context) genSwitchKey(g *rlwe.PRNG, sk *SecretKey, target rlwe.RNSPoly) [][2]rlwe.RNSPoly {
	rq := c.RQ
	base := c.Params.RelinBits
	digits := (rq.Q.BitLen() + int(base) - 1) / int(base)

	tNTT := target.Clone()
	rq.NTT(tNTT)

	var pairs [][2]rlwe.RNSPoly
	bPow := big.NewInt(1)
	for k := 0; k < digits; k++ {
		a := rq.UniformPoly(g)
		e := rq.NoisePoly(g, c.Params.Eta)
		rq.NTT(e)
		k0 := rq.NewPoly()
		rq.MulCoeff(k0, a, sk.sNTT)
		rq.Add(k0, k0, e)
		rq.Neg(k0, k0)
		scaled := rq.NewPoly()
		rq.MulScalarBig(scaled, bPow, tNTT)
		rq.Add(k0, k0, scaled)
		pairs = append(pairs, [2]rlwe.RNSPoly{k0, a})
		bPow = new(big.Int).Lsh(bPow, base)
	}
	return pairs
}

// keySwitch decomposes d (coefficient domain) in base 2^base and folds it
// through the pairs, returning the two accumulator polynomials.
func (c *Context) keySwitch(d rlwe.RNSPoly, pairs [][2]rlwe.RNSPoly, base uint) (p0, p1 rlwe.RNSPoly) {
	rq := c.RQ
	digits := len(pairs)

	digitPolys := make([]rlwe.RNSPoly, digits)
	for k := range digitPolys {
		digitPolys[k] = rq.NewPoly()
	}
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), base), big.NewInt(1))
	tmp := new(big.Int)
	for i := 0; i < c.Params.N; i++ {
		v := rq.Reconstruct(d, i)
		for k := 0; k < digits; k++ {
			tmp.And(v, mask)
			rq.SetCoeffBig(digitPolys[k], i, tmp)
			v.Rsh(v, base)
		}
	}
	p0, p1 = rq.NewPoly(), rq.NewPoly()
	for k := 0; k < digits; k++ {
		dk := digitPolys[k]
		rq.NTT(dk)
		term := rq.NewPoly()
		rq.MulCoeff(term, dk, pairs[k][0])
		rq.INTT(term)
		rq.Add(p0, p0, term)
		rq.MulCoeff(term, dk, pairs[k][1])
		rq.INTT(term)
		rq.Add(p1, p1, term)
	}
	return p0, p1
}

// applyAutomorphismPoly computes σ_g(p): X^i ↦ X^{i·g mod 2N}, with the
// negacyclic sign flip when the exponent wraps past N, using the cached
// index table for g and fanning independent limbs over the worker pool.
func (c *Context) applyAutomorphismPoly(p rlwe.RNSPoly, galois uint64) rlwe.RNSPoly {
	tab := c.autoTableFor(galois)
	out := c.RQ.NewPoly()
	c.RQ.ForEachLimb(func(l int) {
		mod := c.RQ.Rings[l].Mod()
		src, dst := p[l], out[l]
		for i, v := range src {
			if v == 0 {
				continue
			}
			j := tab.idx[i]
			if tab.neg[i] {
				dst[j] = mod.Sub(dst[j], v)
			} else {
				dst[j] = mod.Add(dst[j], v)
			}
		}
	})
	return out
}

// Automorphism applies X → X^g to a ciphertext and key-switches it back
// under the original secret key.
func (c *Context) Automorphism(ct *Ciphertext, galois uint64, gks *GaloisKeys) (*Ciphertext, error) {
	if ct.Degree() != 1 {
		return nil, fmt.Errorf("bfv: automorphism requires a degree-1 ciphertext")
	}
	pairs, ok := gks.keys[galois]
	if !ok {
		return nil, fmt.Errorf("bfv: no Galois key for g=%d", galois)
	}
	c0 := c.applyAutomorphismPoly(ct.C[0], galois)
	c1 := c.applyAutomorphismPoly(ct.C[1], galois)
	p0, p1 := c.keySwitch(c1, pairs, gks.base)
	c.RQ.Add(p0, p0, c0)
	return &Ciphertext{C: []rlwe.RNSPoly{p0, p1}}, nil
}

// RotateColumns rotates the batched slots by k positions within each row
// (slot s takes the value previously in slot s+k, wrapping mod N/2).
func (c *Context) RotateColumns(ct *Ciphertext, k int, gks *GaloisKeys) (*Ciphertext, error) {
	if k == 0 {
		return ct.Clone(), nil
	}
	return c.Automorphism(ct, c.columnGalois(k), gks)
}

// RotateRows swaps the two slot rows.
func (c *Context) RotateRows(ct *Ciphertext, gks *GaloisKeys) (*Ciphertext, error) {
	return c.Automorphism(ct, c.rowSwapGalois(), gks)
}

// MulPlain multiplies a ciphertext by an encoded plaintext polynomial
// (slot-wise product under batching). Noise grows by ≈log2(t·N).
func (c *Context) MulPlain(ct *Ciphertext, pt Plaintext) *Ciphertext {
	rq := c.RQ
	// Lift pt to an RNS polynomial (coefficients in [0, t) ⊂ every q_i).
	ptPoly := rq.NewPoly()
	for i, v := range pt {
		for l := range rq.Rings {
			ptPoly[l][i] = v
		}
	}
	rq.NTT(ptPoly)
	out := ct.Clone()
	for j := range out.C {
		rq.NTT(out.C[j])
		rq.MulCoeff(out.C[j], out.C[j], ptPoly)
		rq.INTT(out.C[j])
	}
	return out
}
